"""Unit tests for graph builders and label assignment."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, from_edges, relabel_random


class TestFromEdges:
    def test_dedup_parallel_edges(self):
        g = from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_drops_self_loops(self):
        g = from_edges([(0, 0), (0, 1), (2, 2)])
        assert g.num_edges == 1
        assert g.num_vertices == 3

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphError):
            from_edges([(-1, 2)])

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphError):
            from_edges(np.array([[1, 2, 3]]))

    def test_num_vertices_too_small(self):
        with pytest.raises(GraphError):
            from_edges([(0, 5)], num_vertices=3)

    def test_numpy_input(self):
        arr = np.array([[0, 1], [1, 2], [2, 3]])
        g = from_edges(arr)
        assert g.num_edges == 3

    def test_adjacency_sorted_after_build(self):
        g = from_edges([(3, 0), (1, 0), (2, 0)])
        assert list(g.neighbors(0)) == [1, 2, 3]

    def test_labels_attached(self):
        g = from_edges([(0, 1)], labels=[5, 7])
        assert g.label(0) == 5 and g.label(1) == 7

    def test_labels_wrong_length(self):
        with pytest.raises(GraphError):
            from_edges([(0, 1)], labels=[1])


class TestGraphBuilder:
    def test_incremental(self):
        g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build()
        assert g.num_edges == 2

    def test_add_edges_bulk(self):
        g = GraphBuilder().add_edges([(0, 1), (1, 2), (2, 0)]).build()
        assert g.num_edges == 3

    def test_named(self):
        g = GraphBuilder(name="mine").add_edge(0, 1).build()
        assert g.name == "mine"

    def test_set_labels(self):
        g = GraphBuilder().add_edge(0, 1).set_labels([3, 4]).build()
        assert g.label(1) == 4

    def test_explicit_vertex_count(self):
        g = GraphBuilder(num_vertices=10).add_edge(0, 1).build()
        assert g.num_vertices == 10


class TestRelabelRandom:
    def test_deterministic(self, small_plc):
        a = relabel_random(small_plc, 4, seed=1)
        b = relabel_random(small_plc, 4, seed=1)
        assert np.array_equal(a.labels, b.labels)

    def test_label_range(self, small_plc):
        g = relabel_random(small_plc, 4, seed=2)
        assert g.labels.min() >= 0
        assert g.labels.max() < 4

    def test_structure_preserved(self, small_plc):
        g = relabel_random(small_plc, 8, seed=3)
        assert g.num_edges == small_plc.num_edges
        assert np.array_equal(g.col_idx, small_plc.col_idx)

    def test_rejects_zero_labels(self, small_plc):
        with pytest.raises(GraphError):
            relabel_random(small_plc, 0)
