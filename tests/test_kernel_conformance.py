"""Kernel-backend conformance: scalar vs vectorized, bit for bit.

The vectorized backend (:mod:`repro.kernels.vectorized`) replaces the
matcher's per-candidate leaf loop with one NumPy pass per sync-window
batch.  Its contract is *exact equivalence*: on every input it must
produce the same match count AND the same simulated cycle schedule as the
scalar reference — identical makespan, busy/idle split, timeout and steal
events.  Host wall-clock is the only permitted difference.

The suite sweeps seeded differential cases (same ``REPRO_DIFF_SEED``
offsetting scheme as ``test_differential_engines``) across the regimes
that exercise distinct code paths: unlabeled/labeled, reuse on/off,
timeout-steal and half-steal schedules, paged and truncating array
stacks, the non-T-DFS engines, and empty/degenerate frontiers.  White-box
tests force block engagement with ``VectorizedBackend(min_batch=1)`` so
tiny graphs still cover the batched path, and pin the
``intersect_sorted`` out-of-range clamp.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TDFSConfig, from_edges, match
from repro.core.config import StackMode, Strategy
from repro.core.intersect import intersect_sorted
from repro.errors import ReproError
from repro.graph.builder import relabel_random
from repro.kernels import (
    BACKEND_NAMES,
    ScalarBackend,
    VectorizedBackend,
    available_backends,
    make_backend,
    resolve_backend,
)
from tests.fuzz import (  # shared case space (see tests/fuzz.py)
    FAST,
    SEED_BASE,
    STEAL,
    case_graph,
    case_query,
)

#: Everything two backend runs must agree on.  ``elapsed_cycles`` alone
#: nearly implies the rest (one mischarged candidate shifts the whole
#: virtual schedule), but naming the fields makes divergence reports
#: point at the mechanism, not just the symptom.
CONFORMANCE_FIELDS = (
    "count",
    "elapsed_cycles",
    "busy_cycles",
    "idle_cycles",
    "intersections",
    "reuse_hits",
    "timeouts",
    "steals",
    "overflowed",
)


def assert_conformant(graph, query, config, engine="tdfs", label=""):
    """Run both backends and assert the full conformance field set."""
    scalar = match(
        graph, query, engine=engine,
        config=config.replace(kernel_backend="scalar"),
    )
    vec = match(
        graph, query, engine=engine,
        config=config.replace(kernel_backend="vectorized"),
    )
    for f in CONFORMANCE_FIELDS:
        assert getattr(scalar, f) == getattr(vec, f), (
            f"{label or graph.name}/{query if isinstance(query, str) else query.name}"
            f" [{engine}]: backends diverge on {f}: "
            f"scalar={getattr(scalar, f)} vectorized={getattr(vec, f)}"
        )
    return scalar, vec


class TestUnlabeledConformance:
    """Seeded unlabeled cases across both graph families."""

    @pytest.mark.parametrize("case", range(8))
    def test_backends_agree(self, case):
        seed = SEED_BASE + case
        assert_conformant(case_graph(seed), case_query(seed), FAST)


class TestLabeledConformance:
    """Labeled graphs: label filters shrink and sometimes empty frontiers."""

    @pytest.mark.parametrize("case", range(4))
    def test_backends_agree(self, case):
        seed = SEED_BASE + 500 + case
        graph = case_graph(seed)
        labeled = relabel_random(graph, 4, seed=seed, name=f"{graph.name}-L4")
        query = case_query(seed, num_labels=4)
        assert_conformant(labeled, query, FAST)


class TestScheduleConformance:
    """The schedule itself must be backend-invariant.

    Timeout decomposition and stealing key off warp-local virtual clocks;
    a single mischarged cycle moves a timeout and changes who steals what.
    Equal timeout/steal/queue behaviour is therefore the sharpest
    cycle-conformance probe available.
    """

    @pytest.mark.parametrize("case", range(4))
    def test_timeout_steal(self, case):
        seed = SEED_BASE + 900 + case
        scalar, _ = assert_conformant(
            case_graph(seed), case_query(seed), STEAL, label="steal"
        )

    def test_some_steal_case_decomposes(self):
        """Guard against a vacuous schedule sweep: at least one case in the
        current seed slice must actually trigger timeout decomposition."""
        for case in range(4):
            seed = SEED_BASE + 900 + case
            cfg = STEAL.replace(kernel_backend="vectorized")
            if match(case_graph(seed), case_query(seed), config=cfg).timeouts:
                return
        pytest.fail("no steal case decomposed; τ/chunk too lax for the slice")

    @pytest.mark.parametrize("case", range(2))
    def test_half_steal(self, case):
        seed = SEED_BASE + 950 + case
        cfg = TDFSConfig(num_warps=8, strategy=Strategy.HALF_STEAL, chunk_size=2)
        assert_conformant(case_graph(seed), case_query(seed), cfg, label="half")

    @pytest.mark.parametrize("case", range(2))
    def test_reuse_disabled(self, case):
        seed = SEED_BASE + 970 + case
        cfg = FAST.replace(enable_reuse=False)
        assert_conformant(case_graph(seed), case_query(seed), cfg, label="noreuse")


class TestStackVariantConformance:
    """Stack storage changes write charges; backends must track exactly."""

    def test_release_pages_declines_bulk_path(self, small_plc):
        # Page release interleaves frees with writes, so ``plan_writes``
        # declines and every block falls back to the scalar write loop —
        # which must still be charge-identical.
        cfg = FAST.replace(release_pages=True)
        assert_conformant(small_plc, "P3", cfg, label="release")

    def test_truncating_array_stacks(self, small_plc):
        # STMatch-style fixed levels with silent truncation: both backends
        # must truncate the *same* candidates (the vectorized plan declines
        # on any would-be overflow) and report the overflow flag.
        cfg = FAST.replace(
            stack_mode=StackMode.ARRAY_FIXED,
            fixed_capacity=8,
            truncate_on_overflow=True,
        )
        scalar, vec = assert_conformant(small_plc, "P3", cfg, label="trunc")
        assert scalar.overflowed and vec.overflowed

    def test_array_dmax_stacks(self, small_plc):
        cfg = FAST.replace(stack_mode=StackMode.ARRAY_DMAX)
        assert_conformant(small_plc, "P3", cfg, label="dmax")


class TestEngineConformance:
    """Baseline engines route through the same matcher and backends."""

    @pytest.mark.parametrize("engine", ["stmatch", "egsm", "pbe"])
    def test_backends_agree(self, engine, small_plc):
        assert_conformant(small_plc, "P2", FAST, engine=engine)


class TestDegenerateFrontiers:
    """Empty and near-empty inputs: the decline paths must line up too."""

    def test_no_instances(self):
        path = from_edges([(i, i + 1) for i in range(30)], name="path")
        scalar, vec = assert_conformant(path, "P1", FAST, label="empty")
        assert scalar.count == 0

    def test_graph_smaller_than_query(self, triangle):
        scalar, vec = assert_conformant(triangle, "P8", FAST, label="tiny")
        assert scalar.count == 0

    def test_single_edge(self):
        pair = from_edges([(0, 1)], name="pair")
        assert_conformant(pair, "P1", FAST, label="edge")


class TestForcedBlockEngagement:
    """White-box: ``min_batch=1`` removes the size gate, so even tiny
    graphs drive the batched leaf path; results must still be exact."""

    def test_forced_blocks_agree(self):
        engaged = 0
        for case in range(6):
            seed = SEED_BASE + 980 + case
            graph = case_graph(seed)
            query = case_query(seed)
            scalar = match(
                graph, query, config=FAST.replace(kernel_backend="scalar")
            )
            backend = VectorizedBackend(min_batch=1)
            produced = []
            inner = backend.leaf_block

            def spy(job, st, position, candidates):
                block = inner(job, st, position, candidates)
                produced.append(block)
                return block

            backend.leaf_block = spy
            vec = match(graph, query, config=FAST.replace(kernel_backend=backend))
            for f in CONFORMANCE_FIELDS:
                assert getattr(scalar, f) == getattr(vec, f), (
                    f"forced-block case {case}: diverge on {f}"
                )
            accepted = [b for b in produced if b is not None]
            assert all(b.count >= 1 for b in accepted)
            engaged += len(accepted)
        # Not every case can engage (k = 3 queries have no stack-position
        # leaves; some leaf shapes are unsupported and decline), but a
        # whole slice without a single block means the gate is broken.
        assert engaged, "min_batch=1 never engaged the block path in the slice"

    def test_forced_blocks_under_steal(self):
        seed = SEED_BASE + 990
        graph = case_graph(seed)
        query = case_query(seed)
        scalar = match(
            graph, query, config=STEAL.replace(kernel_backend="scalar")
        )
        vec = match(
            graph,
            query,
            config=STEAL.replace(kernel_backend=VectorizedBackend(min_batch=1)),
        )
        for f in CONFORMANCE_FIELDS:
            assert getattr(scalar, f) == getattr(vec, f)


class TestIntersectSortedClamp:
    """Regression: probes past ``b``'s end must clamp, never alias."""

    def test_element_beyond_b_max(self):
        a = np.array([5, 100], dtype=np.int32)
        b = np.array([1, 5, 7], dtype=np.int32)
        assert intersect_sorted(a, b).tolist() == [5]

    def test_all_elements_beyond_b_max(self):
        a = np.array([50, 60, 70], dtype=np.int32)
        b = np.array([1, 2, 3], dtype=np.int32)
        out = intersect_sorted(a, b)
        assert out.size == 0 and out.dtype == np.int32

    def test_boundary_element_equal_to_b_max(self):
        a = np.array([3, 99], dtype=np.int32)
        b = np.array([1, 2, 3], dtype=np.int32)
        assert intersect_sorted(a, b).tolist() == [3]

    def test_symmetry_with_swapped_sizes(self):
        # intersect_sorted swaps to stream the smaller list; the clamp must
        # hold regardless of which side carries the out-of-range element.
        a = np.array([10], dtype=np.int32)
        b = np.array([1, 2, 3, 4, 5], dtype=np.int32)
        assert intersect_sorted(a, b).size == 0
        assert intersect_sorted(b, a).size == 0


class TestBackendRegistry:
    """Construction-surface checks for the backend plumbing."""

    def test_available_names(self):
        assert available_backends() == BACKEND_NAMES
        assert "scalar" in BACKEND_NAMES and "vectorized" in BACKEND_NAMES

    def test_make_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            make_backend("simd")

    def test_cache_alias_attaches_default_cache(self):
        backend = make_backend("vectorized+cache")
        assert isinstance(backend, VectorizedBackend)
        assert backend.cache is not None and backend.cache.capacity > 0

    def test_cache_entries_attach_to_any_backend(self):
        backend = make_backend("scalar", cache_entries=7)
        assert isinstance(backend, ScalarBackend)
        assert backend.cache is not None and backend.cache.capacity == 7

    def test_resolve_passes_instances_through(self):
        inst = VectorizedBackend()
        assert resolve_backend(inst) is inst
        assert isinstance(resolve_backend(None), VectorizedBackend)

    def test_config_rejects_unknown_backend_name(self):
        with pytest.raises(ReproError, match="unknown kernel backend"):
            TDFSConfig(kernel_backend="simd")

    def test_scalar_backend_never_offers_blocks(self):
        backend = ScalarBackend()
        assert backend.batched is False
        assert backend.block_threshold(None, None, 3) == 0
