"""Unit tests for the virtual-GPU substrate: atomics, scheduler, memory."""

import pytest

from repro.errors import DeviceError, DeviceOOMError
from repro.gpusim.atomics import AtomicInt, AtomicIntArray
from repro.gpusim.costmodel import CYCLES_PER_MS, CostModel
from repro.gpusim.device import VirtualGPU, Warp
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.scheduler import Scheduler


class TestAtomics:
    def test_add_returns_old(self):
        a = AtomicInt(5)
        assert a.add(3) == 5
        assert a.load() == 8

    def test_sub_returns_old(self):
        a = AtomicInt(5)
        assert a.sub(2) == 5
        assert a.load() == 3

    def test_cas_success(self):
        a = AtomicInt(7)
        assert a.cas(7, 9) == 7
        assert a.load() == 9

    def test_cas_failure(self):
        a = AtomicInt(7)
        assert a.cas(5, 9) == 7
        assert a.load() == 7

    def test_exch(self):
        a = AtomicInt(1)
        assert a.exch(2) == 1
        assert a.load() == 2

    def test_array_ops(self):
        arr = AtomicIntArray(3, fill=-1)
        assert arr.cas(0, -1, 42) == -1
        assert arr.exch(0, -1) == 42
        assert arr.snapshot() == [-1, -1, -1]


class TestScheduler:
    def test_runs_in_time_order(self):
        sched = Scheduler()
        log = []

        class Ctx:
            def __init__(self, name):
                self.name = name

            def _on_resume(self, t):
                pass

        def body(name, costs):
            for c in costs:
                log.append(name)
                yield c

        sched.spawn(Ctx("slow"), body("slow", [100, 100]))
        sched.spawn(Ctx("fast"), body("fast", [10, 10, 10]))
        end = sched.run()
        # fast's second step (t=10) precedes slow's second step (t=100).
        assert log[:2] == ["slow", "fast"]  # both start at t=0
        assert log.index("fast", 2) < len(log)
        assert end == 200

    def test_spawn_during_run(self):
        sched = Scheduler()
        seen = []

        class Ctx:
            def _on_resume(self, t):
                pass

        def child():
            seen.append("child")
            yield 1

        def parent():
            yield 5
            sched.spawn(Ctx(), child(), at=sched.now + 100)
            yield 1

        sched.spawn(Ctx(), parent())
        sched.run()
        assert seen == ["child"]

    def test_livelock_guard(self):
        sched = Scheduler()

        class Ctx:
            def _on_resume(self, t):
                pass

        def forever():
            while True:
                yield 1

        sched.spawn(Ctx(), forever())
        with pytest.raises(DeviceError):
            sched.run(max_events=100)


class TestWarpContext:
    def test_now_includes_accrued(self):
        gpu = VirtualGPU(num_warps=1)
        warp = Warp(gpu, 0)
        warp._on_resume(1000)
        warp.charge(50)
        assert warp.now == 1050

    def test_sync_resets(self):
        warp = Warp(VirtualGPU(num_warps=1), 0)
        warp.charge(30)
        assert warp.sync() == 30
        assert warp.sync() == 0

    def test_busy_idle_accounting(self):
        warp = Warp(VirtualGPU(num_warps=1), 0)
        warp.charge(30, busy=True)
        warp.charge(20, busy=False)
        assert warp.stats.busy_cycles == 30
        assert warp.stats.idle_cycles == 20


class TestVirtualGPU:
    def test_launch_and_run(self):
        gpu = VirtualGPU(num_warps=4)

        def body(warp):
            warp.charge(100)
            yield warp.sync()
            gpu.note_work_done(warp.now)

        gpu.launch(body)
        gpu.run()
        assert gpu.finish_time == 100
        assert gpu.elapsed_ms == pytest.approx(100 / CYCLES_PER_MS)

    def test_load_imbalance(self):
        gpu = VirtualGPU(num_warps=2)

        def body(warp):
            warp.charge(100 if warp.wid == 0 else 300)
            yield warp.sync()

        gpu.launch(body)
        gpu.run()
        assert gpu.load_imbalance() == pytest.approx(300 / 200)

    def test_total_stats_aggregates(self):
        gpu = VirtualGPU(num_warps=3)

        def body(warp):
            warp.stats.matches += warp.wid
            warp.charge(10)
            yield warp.sync()

        gpu.launch(body)
        gpu.run()
        assert gpu.total_stats().matches == 0 + 1 + 2


class TestDeviceMemory:
    def test_allocate_release(self):
        mem = DeviceMemory(capacity=1000)
        h = mem.allocate(400, tag="x")
        assert mem.used == 400
        mem.release(h)
        assert mem.used == 0
        assert mem.peak == 400

    def test_oom(self):
        mem = DeviceMemory(capacity=100)
        with pytest.raises(DeviceOOMError) as exc:
            mem.allocate(200, tag="big")
        assert exc.value.requested == 200
        assert not mem.allocations

    def test_usage_by_tag(self):
        mem = DeviceMemory(capacity=1000)
        mem.allocate(100, tag="a")
        mem.allocate(200, tag="a")
        mem.allocate(300, tag="b")
        assert mem.usage_by_tag() == {"a": 300, "b": 300}

    def test_would_fit(self):
        mem = DeviceMemory(capacity=100)
        assert mem.would_fit(100)
        mem.allocate(60)
        assert not mem.would_fit(50)


class TestCostModel:
    def test_intersect_scales_with_a(self):
        c = CostModel()
        assert c.intersect_cost(64, 100) > c.intersect_cost(32, 100)

    def test_intersect_scales_with_log_b(self):
        c = CostModel()
        assert c.intersect_cost(32, 10_000) > c.intersect_cost(32, 10)

    def test_memory_multiplier(self):
        c = CostModel()
        c3 = c.with_memory_multiplier(3.0)
        assert c3.intersect_cost(64, 64) > c.intersect_cost(64, 64)
        assert c3.copy_cost(64) > c.copy_cost(64)

    def test_empty_intersection_cheap(self):
        c = CostModel()
        assert c.intersect_cost(0, 100) == c.step

    def test_alloc_cost_per_kb(self):
        c = CostModel()
        assert c.alloc_cost(10 * 1024) == 10 * c.big_alloc_per_kb
