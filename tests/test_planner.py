"""Unit and integration tests for the cost-based planner (:mod:`repro.planner`).

Covers the four planner layers (statistics, cardinality estimation, plan
search, runtime feedback), the engine/serve wiring, and the ordering
edge cases the planner leans on (single vertex, star, clique,
disconnected queries, cross-process fingerprint stability).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro import TDFSConfig, compile_plan, get_pattern, match
from repro.core.engine import TDFSEngine, make_engine
from repro.core.result import MatchResult
from repro.errors import PlanError, ReproError, UnsupportedError
from repro.planner import (
    CardinalityEstimator,
    PlanFeedbackStore,
    PlannerConfig,
    compute_profile,
    plan_query,
    profile_graph,
    refine_estimates,
    sample_branch_factors,
)
from repro.query.ordering import choose_matching_order, validate_order
from repro.query.pattern import QueryGraph
from repro.serve import MatchService, ServeConfig, plan_fingerprint, plan_key
from repro.serve.cache import config_fingerprint

#: Small planner budget — keeps the full-suite runtime low while still
#: exercising the beam search and the sampling refiner.
FAST_PLANNER = PlannerConfig(beam_width=4, portfolio_size=3, samples=64, descents=4)


# --------------------------------------------------------------------------- #
# Statistics
# --------------------------------------------------------------------------- #


class TestGraphProfile:
    def test_basic_moments(self, small_plc):
        p = compute_profile(small_plc)
        assert p.num_vertices == small_plc.num_vertices
        assert p.num_edges == small_plc.num_edges
        assert p.avg_degree == pytest.approx(
            2.0 * p.num_edges / p.num_vertices
        )
        # Size-biased mean >= plain mean, with equality only for regular
        # graphs — a power-law graph is decidedly not regular.
        assert p.sb_degree > p.avg_degree
        assert p.max_degree >= p.sb_degree
        assert 0.0 <= p.closure_rate <= 1.0
        assert 0.0 < p.edge_prob < 1.0

    def test_degree_survival_monotone(self, small_plc):
        p = compute_profile(small_plc)
        assert p.degree_survival(0) == 1.0
        prev = 1.0
        for d in range(1, p.max_degree + 2):
            cur = p.degree_survival(d)
            assert cur <= prev
            prev = cur
        assert p.degree_survival(p.max_degree + 1) == 0.0

    def test_unlabeled_defaults(self, small_plc):
        p = compute_profile(small_plc)
        assert not p.is_labeled
        assert p.label_freq == {0: 1.0}
        assert p.freq(0) == 1.0
        assert p.candidates_with(0, 0) == p.num_vertices

    def test_labeled_frequencies(self, labeled_plc):
        p = compute_profile(labeled_plc)
        assert p.is_labeled
        assert sum(p.label_freq.values()) == pytest.approx(1.0)
        total = sum(
            p.candidates_with(lab, 0) for lab in p.label_freq
        )
        assert total == pytest.approx(p.num_vertices)

    def test_deterministic_and_cached(self, small_plc):
        a = compute_profile(small_plc, seed=3)
        b = compute_profile(small_plc, seed=3)
        assert a.closure_rate == b.closure_rate
        # profile_graph caches per (seed, samples) on the graph instance.
        p1 = profile_graph(small_plc, seed=3)
        p2 = profile_graph(small_plc, seed=3)
        assert p1 is p2
        assert profile_graph(small_plc, seed=4) is not p1

    def test_row_shape(self, small_plc):
        row = compute_profile(small_plc).row()
        assert row[0] == small_plc.name
        assert len(row) == 7


# --------------------------------------------------------------------------- #
# Cardinality estimation
# --------------------------------------------------------------------------- #


class TestEstimator:
    def test_level_estimates_shape(self, small_plc):
        plan = compile_plan(get_pattern("P4"))
        est = CardinalityEstimator(profile_graph(small_plc))
        levels = est.level_estimates(plan)
        assert len(levels) == plan.num_levels
        assert all(lv.cardinality >= 0 for lv in levels)
        assert levels[0].cardinality > 0

    def test_estimate_tracks_truth_order_of_magnitude(self, small_plc):
        # P1 (triangle) on the clustered graph: the independence estimate
        # must land within ~a decade of the true count, not at 0 or 1e9.
        plan = compile_plan(get_pattern("P1"), enable_symmetry=False)
        est = CardinalityEstimator(profile_graph(small_plc)).estimate_matches(plan)
        truth = match(small_plc, "P1", config=TDFSConfig(num_warps=8)).count * 6
        assert truth / 30 <= est <= truth * 30

    def test_sampling_deterministic(self, small_plc):
        plan = compile_plan(get_pattern("P4"))
        a = sample_branch_factors(small_plc, plan, descents=8, seed=5)
        b = sample_branch_factors(small_plc, plan, descents=8, seed=5)
        assert a == b

    def test_refine_overrides_observed_levels(self, small_plc):
        plan = compile_plan(get_pattern("P4"))
        est = CardinalityEstimator(profile_graph(small_plc))
        levels = est.level_estimates(plan)
        sampled = sample_branch_factors(small_plc, plan, descents=16, seed=0)
        refined = refine_estimates(levels, sampled)
        assert len(refined) == len(levels)
        # Level 0 is exact in the sampled pass, so it must be adopted.
        means, obs = sampled
        assert refined[0].cardinality == pytest.approx(means[0])


# --------------------------------------------------------------------------- #
# Plan search
# --------------------------------------------------------------------------- #


class TestPlanSearch:
    def test_portfolio_members_are_valid_orders(self, small_plc):
        q = get_pattern("P4")
        portfolio = plan_query(small_plc, q, FAST_PLANNER)
        assert 1 <= len(portfolio.choices) <= FAST_PLANNER.portfolio_size
        for choice in portfolio.choices:
            validate_order(q, list(choice.order))
            assert choice.est_cycles > 0
            assert choice.source in ("beam", "greedy")

    def test_ranked_by_estimated_cycles(self, small_plc):
        portfolio = plan_query(small_plc, get_pattern("P4"), FAST_PLANNER)
        costs = [c.est_cycles for c in portfolio.choices]
        assert costs == sorted(costs)

    def test_greedy_always_evaluated(self, small_plc):
        greedy = tuple(choose_matching_order(get_pattern("P1")))
        portfolio = plan_query(small_plc, get_pattern("P1"), FAST_PLANNER)
        # P1 is a triangle: any connected order works, and the portfolio
        # must contain the greedy order among its candidates (it can only
        # be absent if portfolio_size orders beat it — impossible for k=3
        # where all orders tie structurally, so check membership or that
        # every member costs no more than some candidate).
        choice = portfolio.choice_for_order(greedy)
        if choice is not None:
            assert choice.source == "greedy"
        assert portfolio.best.est_cycles <= max(
            c.est_cycles for c in portfolio.choices
        )

    def test_deterministic_across_calls(self, small_plc):
        a = plan_query(small_plc, get_pattern("P4"), FAST_PLANNER)
        b = plan_query(small_plc, get_pattern("P4"), FAST_PLANNER)
        assert [c.order for c in a.choices] == [c.order for c in b.choices]
        assert [c.est_cycles for c in a.choices] == [
            c.est_cycles for c in b.choices
        ]

    def test_parallelism_scales_cost_not_ranking(self, small_plc):
        q = get_pattern("P4")
        work = plan_query(small_plc, q, FAST_PLANNER, parallelism=1)
        wall = plan_query(small_plc, q, FAST_PLANNER, parallelism=64)
        assert [c.order for c in work.choices] == [c.order for c in wall.choices]
        for w, p in zip(work.choices, wall.choices):
            assert p.est_cycles == pytest.approx(w.est_cycles / 64)

    def test_all_members_count_identical(self, small_plc, fast_config):
        portfolio = plan_query(small_plc, get_pattern("P4"), FAST_PLANNER)
        engine = TDFSEngine(fast_config)
        counts = {
            engine.run(small_plc, choice.plan).count
            for choice in portfolio.choices
        }
        assert len(counts) == 1

    def test_single_vertex_raises_plan_error(self, small_plc):
        q = QueryGraph(1, [], name="dot")
        with pytest.raises(PlanError):
            plan_query(small_plc, q, FAST_PLANNER)

    def test_describe_mentions_every_member(self, small_plc):
        portfolio = plan_query(small_plc, get_pattern("P1"), FAST_PLANNER)
        text = portfolio.describe()
        for rank in range(1, len(portfolio.choices) + 1):
            assert f"#{rank}" in text
        assert "breakdown" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlannerConfig(beam_width=0)
        with pytest.raises(ValueError):
            PlannerConfig(portfolio_size=0)
        with pytest.raises(ValueError):
            PlannerConfig(descents=-1)


# --------------------------------------------------------------------------- #
# Engine wiring
# --------------------------------------------------------------------------- #


class TestEngineIntegration:
    def test_planner_off_is_bit_identical_to_legacy(self, small_plc):
        cfg = TDFSConfig(num_warps=8)  # planner=None
        engine = TDFSEngine(cfg)
        for name in ("P1", "P3", "P4"):
            q = get_pattern(name)
            assert engine.compile(q, small_plc) == compile_plan(q)

    def test_planner_on_preserves_counts(self, small_plc):
        off = TDFSConfig(num_warps=8)
        on = off.replace(planner=FAST_PLANNER)
        for name in ("P1", "P3", "P4"):
            legacy = match(small_plc, name, config=off).count
            planned = match(small_plc, name, config=on).count
            assert planned == legacy

    def test_egsm_portfolio_respects_engine_flags(self, small_plc):
        cfg = TDFSConfig(num_warps=8, planner=FAST_PLANNER)
        egsm = make_engine("egsm", cfg)
        portfolio = egsm.plan_portfolio(small_plc, get_pattern("P1"))
        # EGSM pins symmetry off — every portfolio member must honor it.
        assert all(not c.plan.symmetry_enabled for c in portfolio.choices)

    def test_plan_portfolio_requires_planner(self, small_plc):
        engine = TDFSEngine(TDFSConfig(num_warps=8))
        with pytest.raises(UnsupportedError):
            engine.plan_portfolio(small_plc, get_pattern("P1"))

    def test_config_rejects_bad_planner(self):
        with pytest.raises(ReproError, match="planner"):
            TDFSConfig(planner="greedy")  # type: ignore[arg-type]

    def test_planner_changes_config_fingerprint(self):
        base = TDFSConfig()
        assert config_fingerprint(base) != config_fingerprint(
            base.replace(planner=FAST_PLANNER)
        )


# --------------------------------------------------------------------------- #
# Feedback store
# --------------------------------------------------------------------------- #


class TestFeedbackStore:
    KEY = ("g", "fp")

    def _portfolio(self, small_plc):
        return plan_query(small_plc, get_pattern("P4"), FAST_PLANNER)

    def test_record_and_aggregate(self):
        store = PlanFeedbackStore()
        store.record(self.KEY, (0, 1, 2), cycles=100.0, est_cycles=80.0)
        obs = store.record(self.KEY, (0, 1, 2), cycles=200.0, timeouts=1)
        assert obs.runs == 2
        assert obs.avg_cycles == pytest.approx(150.0)
        assert obs.timeouts == 1
        assert store.observation(self.KEY, (0, 1, 2)) is obs
        assert store.observation(self.KEY, (2, 1, 0)) is None
        assert len(store) == 1

    def test_rel_error(self):
        store = PlanFeedbackStore()
        obs = store.record(self.KEY, (0, 1), cycles=100.0, est_cycles=150.0)
        assert obs.rel_error == pytest.approx(0.5)
        fresh = store.record(("h", "fp"), (0, 1), cycles=0.0, error=True)
        assert fresh.rel_error is None

    def test_preferred_unobserved_follows_estimates(self, small_plc):
        portfolio = self._portfolio(small_plc)
        store = PlanFeedbackStore()
        assert store.preferred(self.KEY, portfolio) is portfolio.best

    def test_observed_cycles_promote(self, small_plc):
        portfolio = self._portfolio(small_plc)
        assert len(portfolio.choices) >= 2
        best, runner = portfolio.choices[0], portfolio.choices[1]
        store = PlanFeedbackStore()
        # Observation: the estimated runner-up is actually much cheaper.
        store.record(self.KEY, best.order, cycles=best.est_cycles * 10)
        store.record(self.KEY, runner.order, cycles=1.0)
        assert store.preferred(self.KEY, portfolio) is runner

    def test_errors_demote(self, small_plc):
        portfolio = self._portfolio(small_plc)
        store = PlanFeedbackStore()
        store.record(self.KEY, portfolio.best.order, cycles=0.0, error=True)
        assert store.preferred(self.KEY, portfolio) is portfolio.choices[1]

    def test_invalidate_graph(self):
        store = PlanFeedbackStore()
        store.record(("g", "a"), (0, 1), cycles=1.0)
        store.record(("g", "b"), (0, 1), cycles=1.0)
        store.record(("h", "a"), (0, 1), cycles=1.0)
        assert store.invalidate_graph("g") == 2
        assert len(store) == 1


# --------------------------------------------------------------------------- #
# Ordering edge cases (satellites)
# --------------------------------------------------------------------------- #


class TestOrderingEdgeCases:
    def test_single_vertex_order(self):
        q = QueryGraph(1, [], name="dot")
        assert choose_matching_order(q) == [0]

    def test_star_center_first(self):
        q = QueryGraph(5, [(2, 0), (2, 1), (2, 3), (2, 4)], name="star")
        order = choose_matching_order(q)
        assert order[0] == 2
        validate_order(q, order)

    def test_clique_order_is_identity(self):
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        q = QueryGraph(5, edges, name="k5")
        # All degrees tie; lowest-id tie-breaks give the identity order.
        assert choose_matching_order(q) == [0, 1, 2, 3, 4]

    def test_disconnected_query_names_unreachable(self):
        # QueryGraph validates connectivity at construction, so the broken
        # invariant is forced by mutating the adjacency afterwards — the
        # exact corruption a buggy caller could produce.
        q = QueryGraph(4, [(0, 1), (1, 2), (2, 3)], name="path4")
        q.adj[2].discard(3)
        q.adj[3].discard(2)
        with pytest.raises(PlanError) as exc:
            choose_matching_order(q)
        msg = str(exc.value)
        assert "disconnected" in msg
        assert "[3]" in msg  # names the unreachable vertex
        assert "path4" in msg

    def test_disconnected_many_unreachable(self):
        q = QueryGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)], name="path5")
        for u, v in ((2, 3), (3, 4)):
            q.adj[u].discard(v)
            q.adj[v].discard(u)
        with pytest.raises(PlanError, match=r"\[3, 4\]"):
            choose_matching_order(q)


# --------------------------------------------------------------------------- #
# Fingerprint stability (satellite: cross-process cache keys)
# --------------------------------------------------------------------------- #


class TestFingerprintStability:
    _SNIPPET = (
        "from repro import compile_plan, get_pattern;"
        "from repro.serve import plan_fingerprint;"
        "q = get_pattern('P4');"
        "print(plan_fingerprint(q));"
        "print(plan_fingerprint(compile_plan(q)))"
    )

    def _run(self, hash_seed: str) -> list[str]:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.path.abspath("src")
        out = subprocess.run(
            [sys.executable, "-c", self._SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return out.stdout.split()

    def test_fingerprints_stable_across_hash_seeds(self):
        a = self._run("1")
        b = self._run("2")
        assert a == b
        assert a[0] == plan_fingerprint(get_pattern("P4"))
        assert a[1] == plan_fingerprint(compile_plan(get_pattern("P4")))


# --------------------------------------------------------------------------- #
# Serving-layer integration
# --------------------------------------------------------------------------- #


def planner_service(**overrides) -> MatchService:
    cfg = TDFSConfig(num_warps=8, planner=FAST_PLANNER)
    defaults = dict(workers=1, match_config=cfg)
    defaults.update(overrides)
    return MatchService(ServeConfig(**defaults))


class TestServePlanner:
    def test_counts_and_feedback_flow(self, small_plc, fast_config):
        with planner_service() as svc:
            svc.register_graph("g", small_plc)
            expected = match(small_plc, "P4", config=fast_config).count
            cold = svc.query("g", "P4")
            assert cold.count == expected
            assert svc.metrics.get("planner_feedback") == 1
            assert len(svc.feedback) == 1
            assert len(svc.portfolio_cache) == 1
            # Estimator error was published for the executed member.
            assert svc.metrics.plan_error.snapshot()["count"] == 1
            # Second request: plan cache hit, same count, more feedback
            # only if it actually executes (result cache answers it).
            warm = svc.query("g", "P4")
            assert warm.count == expected

    def test_version_bump_drops_planner_state(self, small_plc):
        with planner_service() as svc:
            svc.register_graph("g", small_plc)
            svc.query("g", "P4")
            assert len(svc.feedback) == 1
            svc.apply_edges("g", add=[(0, 1), (0, 2)])
            # Plans, portfolios and feedback for the old statistics are
            # gone — regardless of eager_invalidation (which only governs
            # the result cache).
            assert len(svc.feedback) == 0
            assert len(svc.portfolio_cache) == 0
            assert len(svc.plan_cache) == 0

    def test_rerank_invalidates_cached_plan(self, small_plc):
        svc = planner_service()
        q = get_pattern("P4")
        portfolio = plan_query(small_plc, q, FAST_PLANNER)
        assert len(portfolio.choices) >= 2
        fp = plan_fingerprint(q)
        key = plan_key("g", 1, fp, "tdfs", "cfg")
        svc.portfolio_cache.put(key, portfolio)
        svc.plan_cache.put(key, portfolio.best.plan)

        def result(error=None) -> MatchResult:
            return MatchResult(
                engine="tdfs",
                graph_name=small_plc.name,
                query_name="P4",
                count=0,
                elapsed_cycles=100,
                error=error,
            )

        # A clean run of the best member does not re-rank, and neither
        # does a single failure (demotion needs errors to outnumber runs).
        svc.record_plan_feedback("g", fp, key, portfolio.best.plan, result())
        svc.record_plan_feedback(
            "g", fp, key, portfolio.best.plan, result(error="OOM")
        )
        assert len(svc.plan_cache) == 1
        assert svc.metrics.get("plan_reranks") == 0
        # A second failure tips the balance: the member is demoted and the
        # cached plan must be dropped so the next request resolves the
        # promoted member.
        svc.record_plan_feedback(
            "g", fp, key, portfolio.best.plan, result(error="OOM")
        )
        assert len(svc.plan_cache) == 0
        assert svc.metrics.get("plan_reranks") == 1
        assert svc.plan_cache.stats().invalidations == 1

    def test_planner_off_service_untouched(self, small_plc):
        cfg = TDFSConfig(num_warps=8)
        with MatchService(
            ServeConfig(workers=1, match_config=cfg)
        ) as svc:
            svc.register_graph("g", small_plc)
            svc.query("g", "P1")
            assert svc.metrics.get("planner_feedback") == 0
            assert len(svc.portfolio_cache) == 0
            assert len(svc.feedback) == 0
