"""Unit tests for the bounded LRU intersection cache (repro.kernels.cache).

Covers the cache in isolation (eviction order, epoch partitioning, copy
semantics), its integration with the engine's obs counters
(``kernel.cache_hits`` / ``kernel.cache_misses`` must reconcile with the
cache's own tallies), and the serving layer's eager invalidation on
``update_graph``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TDFSConfig, match
from repro.graph.generators import power_law_cluster
from repro.kernels import IntersectionCache, VectorizedBackend
from repro.serve import MatchService, ServeConfig


def arr(*xs):
    return np.array(xs, dtype=np.int32)


class TestLRUBehaviour:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            IntersectionCache(0)

    def test_eviction_order_is_lru(self):
        cache = IntersectionCache(capacity=2)
        epoch = cache.bind(object())
        cache.put(epoch, (1, 2), arr(5))
        cache.put(epoch, (3, 4), arr(6))
        cache.put(epoch, (5, 6), arr(7))  # evicts (1, 2), the LRU entry
        assert cache.evictions == 1
        assert cache.keys() == [(epoch, (3, 4)), (epoch, (5, 6))]
        assert cache.get(epoch, (1, 2)) is None

    def test_get_refreshes_recency(self):
        cache = IntersectionCache(capacity=2)
        epoch = cache.bind(object())
        cache.put(epoch, (1, 2), arr(5))
        cache.put(epoch, (3, 4), arr(6))
        assert cache.get(epoch, (1, 2)) is not None  # (1, 2) now MRU
        cache.put(epoch, (5, 6), arr(7))  # evicts (3, 4), not (1, 2)
        assert cache.get(epoch, (3, 4)) is None
        assert cache.get(epoch, (1, 2)).tolist() == [5]

    def test_put_refreshes_recency(self):
        cache = IntersectionCache(capacity=2)
        epoch = cache.bind(object())
        cache.put(epoch, (1, 2), arr(5))
        cache.put(epoch, (3, 4), arr(6))
        cache.put(epoch, (1, 2), arr(9))  # refresh, not insert
        cache.put(epoch, (5, 6), arr(7))
        assert cache.get(epoch, (3, 4)) is None
        assert cache.get(epoch, (1, 2)).tolist() == [9]

    def test_counters_in_stats(self):
        cache = IntersectionCache(capacity=4)
        epoch = cache.bind(object())
        cache.put(epoch, (1, 2), arr(5))
        cache.get(epoch, (1, 2))
        cache.get(epoch, (9, 9))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1 and stats["capacity"] == 4


class TestCopySemantics:
    """Stack levels store by reference, so shared arrays would be poison."""

    def test_get_returns_a_copy(self):
        cache = IntersectionCache(capacity=4)
        epoch = cache.bind(object())
        cache.put(epoch, (1, 2), arr(1, 2, 3))
        out = cache.get(epoch, (1, 2))
        out[0] = 99
        assert cache.get(epoch, (1, 2)).tolist() == [1, 2, 3]

    def test_put_stores_a_copy(self):
        cache = IntersectionCache(capacity=4)
        epoch = cache.bind(object())
        source = arr(1, 2, 3)
        cache.put(epoch, (1, 2), source)
        source[0] = 99
        assert cache.get(epoch, (1, 2)).tolist() == [1, 2, 3]


class TestEpochs:
    def test_same_graph_same_epoch(self):
        cache = IntersectionCache(capacity=4)
        g = object()
        assert cache.bind(g) == cache.bind(g)

    def test_distinct_graphs_distinct_epochs(self):
        cache = IntersectionCache(capacity=4)
        e1, e2 = cache.bind(object()), cache.bind(object())
        assert e1 != e2
        cache_key = (1, 2)
        cache.put(e1, cache_key, arr(5))
        assert cache.get(e2, cache_key) is None  # no cross-graph bleed

    def test_graph_table_eviction_purges_entries(self):
        cache = IntersectionCache(capacity=8, max_graphs=2)
        g1, g2, g3 = object(), object(), object()
        e1 = cache.bind(g1)
        cache.put(e1, (1, 2), arr(5))
        cache.bind(g2)
        cache.bind(g3)  # evicts g1's slot and its entries
        assert cache.get(e1, (1, 2)) is None
        assert cache.stats()["graphs"] == 2

    def test_invalidate_one_graph(self):
        cache = IntersectionCache(capacity=8)
        g1, g2 = object(), object()
        e1, e2 = cache.bind(g1), cache.bind(g2)
        cache.put(e1, (1, 2), arr(5))
        cache.put(e2, (1, 2), arr(6))
        assert cache.invalidate(g1) == 1
        assert cache.invalidations == 1
        assert cache.get(e1, (1, 2)) is None
        assert cache.get(e2, (1, 2)).tolist() == [6]

    def test_invalidate_everything(self):
        cache = IntersectionCache(capacity=8)
        epoch = cache.bind(object())
        cache.put(epoch, (1, 2), arr(5))
        cache.put(epoch, (3, 4), arr(6))
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_invalidate_unknown_graph_is_noop(self):
        cache = IntersectionCache(capacity=8)
        assert cache.invalidate(object()) == 0


class TestObsReconciliation:
    """The engine's kernel.* counters must mirror the cache's own books."""

    def test_hits_misses_reconcile_across_runs(self, small_plc):
        backend = VectorizedBackend(cache=IntersectionCache(capacity=8192))
        cfg = TDFSConfig(
            num_warps=8, enable_reuse=False, kernel_backend=backend
        )
        r1 = match(small_plc, "P3", config=cfg)
        s1 = backend.cache.stats()
        assert s1["misses"] > 0
        assert r1.metrics["kernel.cache_hits"] == s1["hits"]
        assert r1.metrics["kernel.cache_misses"] == s1["misses"]

        # Same graph object → same epoch → the second run hits.
        r2 = match(small_plc, "P3", config=cfg)
        s2 = backend.cache.stats()
        assert s2["hits"] > s1["hits"]
        assert r2.metrics["kernel.cache_hits"] == s2["hits"] - s1["hits"]
        assert r2.metrics["kernel.cache_misses"] == s2["misses"] - s1["misses"]
        assert r2.count == r1.count

    def test_cached_counts_match_uncached(self, small_plc):
        plain = match(
            small_plc, "P3", config=TDFSConfig(num_warps=8, kernel_backend="scalar")
        )
        cached = match(
            small_plc,
            "P3",
            config=TDFSConfig(num_warps=8, kernel_backend="vectorized+cache"),
        )
        assert cached.count == plain.count

    def test_no_cache_no_kernel_counters(self, small_plc):
        result = match(
            small_plc, "P1", config=TDFSConfig(num_warps=8, kernel_backend="vectorized")
        )
        assert "kernel.cache_hits" not in result.metrics


class TestServeInvalidation:
    """update_graph must eagerly drop the replaced graph's entries."""

    def test_update_graph_invalidates_shared_cache(self, small_plc):
        backend = VectorizedBackend(cache=IntersectionCache(capacity=64))
        svc = MatchService(
            ServeConfig(
                workers=1,
                match_config=TDFSConfig(num_warps=8, kernel_backend=backend),
            )
        )
        svc.register_graph("g", small_plc)
        epoch = backend.cache.bind(small_plc)
        backend.cache.put(epoch, (1, 2), arr(5))
        assert len(backend.cache) == 1

        replacement = power_law_cluster(
            50, 2, p_triangle=0.4, seed=9, name="replacement"
        )
        assert svc.update_graph("g", replacement) == 2
        assert len(backend.cache) == 0
        assert backend.cache.invalidations == 1
        # The replacement's epoch is fresh — a stale hit is impossible.
        assert backend.cache.bind(replacement) != epoch

    def test_update_graph_without_cache_is_fine(self, small_plc, k4):
        svc = MatchService(
            ServeConfig(workers=1, match_config=TDFSConfig(num_warps=8))
        )
        svc.register_graph("g", small_plc)
        assert svc.update_graph("g", k4) == 2
