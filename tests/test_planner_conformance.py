"""Planner conformance: cost-based plans must never change counts.

Seeded generated graphs and random queries run both the legacy greedy
plan and every member of the planner's cost-ranked portfolio; all of them
must report the exact same match count.  Planner knobs (beam width,
sampling budget, parallelism scaling) are also swept, since none of them
may leak into semantics.

``REPRO_DIFF_SEED`` offsets the case grid the same way the differential
suite does — CI runs two fixed slices, so every push explores a fresh
region of the case space while staying reproducible.
"""

from __future__ import annotations

import os

import pytest

from repro import TDFSConfig, compile_plan
from repro.core.engine import TDFSEngine
from repro.graph.builder import relabel_random
from repro.graph.generators import erdos_renyi, power_law_cluster
from repro.planner import PlannerConfig, plan_query
from repro.query.random_queries import random_query

#: CI sets REPRO_DIFF_SEED to shift the whole grid; default slice is 0.
SEED_BASE = int(os.environ.get("REPRO_DIFF_SEED", "0")) * 10_000

FAST = TDFSConfig(num_warps=8)
PLANNER = PlannerConfig(beam_width=6, portfolio_size=3, samples=128, descents=8)


def case_graph(seed: int):
    """Deterministic small graph, alternating family by seed."""
    if seed % 2 == 0:
        return erdos_renyi(80 + seed % 5 * 10, 6.0, seed=seed, name=f"er-{seed}")
    return power_law_cluster(
        90 + seed % 3 * 20, 3, p_triangle=0.5, seed=seed, name=f"plc-{seed}"
    )


def case_query(seed: int, num_labels=None):
    k = 3 + seed % 3  # 3..5 query vertices
    density = (seed % 7) / 6.0
    return random_query(
        k, extra_edge_prob=density, num_labels=num_labels, seed=seed
    )


def assert_portfolio_conforms(graph, query, planner=PLANNER):
    """Greedy count == count of every portfolio member."""
    engine = TDFSEngine(FAST)
    reference = engine.run(graph, compile_plan(query)).count
    portfolio = plan_query(graph, query, planner)
    for rank, choice in enumerate(portfolio.choices, start=1):
        got = engine.run(graph, choice.plan).count
        assert got == reference, (
            f"portfolio member #{rank} (order {list(choice.order)}, "
            f"source {choice.source}) reported {got}, greedy plan "
            f"reports {reference} for {query.name} on {graph.name}"
        )
    return portfolio


class TestUnlabeledConformance:
    """Seeded unlabeled cases across both graph families."""

    @pytest.mark.parametrize("case", range(8))
    def test_portfolio_counts_match_greedy(self, case):
        seed = SEED_BASE + case
        assert_portfolio_conforms(case_graph(seed), case_query(seed))


class TestLabeledConformance:
    """Seeded labeled cases: label selectivities steer the estimator but
    must never steer the count."""

    @pytest.mark.parametrize("case", range(4))
    def test_portfolio_counts_match_greedy(self, case):
        seed = SEED_BASE + 300 + case
        graph = case_graph(seed)
        labeled = relabel_random(graph, 4, seed=seed, name=f"{graph.name}-L4")
        query = case_query(seed, num_labels=4)
        assert_portfolio_conforms(labeled, query)


class TestKnobInvariance:
    """Planner knobs shift rankings, never semantics."""

    def test_knobs_never_change_counts(self):
        seed = SEED_BASE + 600
        graph = case_graph(seed)
        query = case_query(seed)
        engine = TDFSEngine(FAST)
        reference = engine.run(graph, compile_plan(query)).count
        for planner in (
            PlannerConfig(beam_width=1, portfolio_size=1, samples=0, descents=0),
            PlannerConfig(beam_width=12, portfolio_size=4, samples=256, descents=16),
            PlannerConfig(include_greedy=False),
        ):
            portfolio = plan_query(graph, query, planner)
            for choice in portfolio.choices:
                assert engine.run(graph, choice.plan).count == reference

    def test_parallelism_never_changes_plans(self):
        seed = SEED_BASE + 700
        graph = case_graph(seed)
        query = case_query(seed)
        work = plan_query(graph, query, PLANNER, parallelism=1)
        wall = plan_query(graph, query, PLANNER, parallelism=64)
        assert [c.order for c in work.choices] == [c.order for c in wall.choices]


class TestEngineConformance:
    """config.planner on vs off through the engine front door."""

    @pytest.mark.parametrize("case", range(4))
    def test_run_counts_identical(self, case):
        seed = SEED_BASE + 800 + case
        graph = case_graph(seed)
        query = case_query(seed)
        legacy = TDFSEngine(FAST).run(graph, query).count
        planned = TDFSEngine(FAST.replace(planner=PLANNER)).run(graph, query).count
        assert planned == legacy
