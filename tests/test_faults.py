"""Chaos harness tests: deterministic fault injection + resilient recovery.

The acceptance bar (mirroring the issue): with a fixed fault seed injecting
a device OOM and a mid-run illegal access, both the single-GPU retry path
and the multi-GPU failover path must return the *same* match count as the
fault-free run, with ``RecoveryStats`` showing the survived faults — and
identical seeds must produce byte-identical survival reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    StackMode,
    Strategy,
    TDFSConfig,
    load_dataset,
    match,
)
from repro.core.engine import TDFSEngine
from repro.core.multi_gpu import merge_results
from repro.errors import ReproError
from repro.core.result import MatchResult, RecoveryStats
from repro.faults import (
    POISON_VALUE,
    format_survival_report,
    pending_rows,
    reshard_groups,
)
from repro.query.patterns import get_pattern


@pytest.fixture(scope="module")
def graph():
    return load_dataset("dblp")


@pytest.fixture(scope="module")
def baseline(graph):
    return match(graph, "P1", config=TDFSConfig())


# --------------------------------------------------------------------------- #
# Plan / policy mechanics
# --------------------------------------------------------------------------- #


def test_stream_seed_is_process_stable_and_site_dependent():
    plan = FaultPlan(seed=42)
    a = plan.stream_seed("gpu0", 1, "alloc")
    assert a == FaultPlan(seed=42).stream_seed("gpu0", 1, "alloc")
    assert a != plan.stream_seed("gpu0", 1, "resume")
    assert a != plan.stream_seed("gpu1", 1, "alloc")
    assert a != plan.stream_seed("gpu0", 2, "alloc")
    assert a != FaultPlan(seed=43).stream_seed("gpu0", 1, "alloc")


def test_retry_policy_ladder_and_backoff():
    policy = RetryPolicy(max_attempts=4, backoff_base_cycles=100)
    assert policy.rungs_for(1) == ()
    assert policy.rungs_for(2) == ("shrink-chunk",)
    assert policy.rungs_for(4) == (
        "shrink-chunk",
        "array-stacks",
        "cpu-fallback",
    )
    assert policy.backoff_cycles(1) == 100
    assert policy.backoff_cycles(3) == 400


def test_fault_spec_matching():
    spec = FaultSpec(FaultKind.OOM, gpu="gpu1", attempt=2)
    assert spec.matches("gpu1", 2)
    assert not spec.matches("gpu0", 2)
    assert not spec.matches("gpu1", 1)
    anyspec = FaultSpec(FaultKind.OOM, attempt=None)
    assert anyspec.matches("gpu7", 9)


def test_plan_is_armed():
    assert not FaultPlan().is_armed
    assert FaultPlan(oom_rate=0.1).is_armed
    assert FaultPlan(schedule=(FaultSpec(FaultKind.STALL),)).is_armed


# --------------------------------------------------------------------------- #
# Error surfacing (no retry): faults appear in MatchResult.error
# --------------------------------------------------------------------------- #

_FATAL_CASES = [
    (FaultKind.OOM, {"at_op": 0}, "OOM"),
    (FaultKind.KERNEL_LAUNCH, {"at_op": 0}, "ERR"),
    (FaultKind.ILLEGAL_ACCESS, {"at_op": 200}, "ERR"),
]


@pytest.mark.parametrize("kind,trigger,marker", _FATAL_CASES)
@pytest.mark.parametrize("num_gpus", [1, 2])
def test_injected_fault_surfaces_in_result_error(
    graph, kind, trigger, marker, num_gpus
):
    plan = FaultPlan(schedule=(FaultSpec(kind, attempt=None, **trigger),))
    cfg = TDFSConfig(num_gpus=num_gpus, fault_plan=plan)
    result = match(graph, "P1", config=cfg)
    assert result.failed
    assert marker in result.error
    assert result.recovery.faults_by_kind.get(kind.value, 0) >= 1


def test_queue_corruption_detected_as_illegal_access(graph):
    plan = FaultPlan(schedule=(FaultSpec(FaultKind.QUEUE_CORRUPTION, at_op=0),))
    cfg = TDFSConfig(chunk_size=2, tau_cycles=50, fault_plan=plan)
    result = match(graph, "P1", config=cfg)
    assert result.failed
    assert "corrupted Q_task slot" in result.error
    assert result.recovery.faults_by_kind.get("queue-corruption") == 1


# --------------------------------------------------------------------------- #
# Single-GPU resilient recovery
# --------------------------------------------------------------------------- #


def test_oom_then_illegal_access_recovers_exact_count(graph, baseline):
    """The issue's acceptance scenario: one OOM + one mid-run illegal
    access; the retried run must land on the fault-free count."""
    plan = FaultPlan(
        schedule=(
            FaultSpec(FaultKind.OOM, attempt=1, at_op=2),
            FaultSpec(FaultKind.ILLEGAL_ACCESS, attempt=2, at_op=400),
        )
    )
    cfg = TDFSConfig(fault_plan=plan, retry=RetryPolicy())
    result = match(graph, "P1", config=cfg)
    assert not result.failed
    assert result.count == baseline.count
    assert result.recovery.attempts == 3
    assert result.recovery.faults_survived >= 2
    assert result.recovery.faults_by_kind == {"oom": 1, "illegal-access": 1}
    assert result.recovery.degradations == ["shrink-chunk", "array-stacks"]
    assert result.recovery.backoff_cycles > 0
    assert "[recovered:" in result.summary()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_seeded_chaos_preserves_count(graph, baseline, seed):
    cfg = TDFSConfig(fault_plan=FaultPlan.seeded(seed), retry=RetryPolicy())
    result = match(graph, "P1", config=cfg)
    assert not result.failed
    assert result.count == baseline.count


@pytest.mark.parametrize(
    "strategy",
    [Strategy.HALF_STEAL, Strategy.NEW_KERNEL, Strategy.NONE],
)
def test_chaos_recovery_under_other_strategies(graph, strategy):
    base = TDFSConfig(strategy=strategy)
    fault_free = match(graph, "P1", config=base)
    cfg = base.replace(fault_plan=FaultPlan.seeded(1), retry=RetryPolicy())
    result = match(graph, "P1", config=cfg)
    assert not result.failed
    assert result.count == fault_free.count


def test_queue_corruption_recovered_via_journal(graph):
    base = TDFSConfig(chunk_size=2, tau_cycles=50)
    fault_free = match(graph, "P1", config=base)
    plan = FaultPlan(seed=7, queue_corruption_rate=0.3)
    cfg = base.replace(fault_plan=plan, retry=RetryPolicy())
    result = match(graph, "P1", config=cfg)
    assert not result.failed
    assert result.count == fault_free.count
    assert result.recovery.faults_by_kind.get("queue-corruption", 0) >= 1


def test_cpu_fallback_rung_finishes_the_job(graph, baseline):
    """Every attempt's device dies; the ladder's last rung must still
    complete the count on the host."""
    plan = FaultPlan(
        schedule=tuple(
            FaultSpec(FaultKind.OOM, attempt=a, at_op=2) for a in range(1, 4)
        )
    )
    cfg = TDFSConfig(fault_plan=plan, retry=RetryPolicy(max_attempts=4))
    result = match(graph, "P1", config=cfg)
    assert not result.failed
    assert result.count == baseline.count
    assert "cpu-fallback" in result.recovery.degradations


def test_recovery_preserves_collected_matches(graph):
    base = TDFSConfig()
    engine = TDFSEngine(base)
    plan_q = engine._resolve_plan(get_pattern("P1"))
    clean = engine.run(graph, plan_q, collect_matches=10**9)
    chaotic = TDFSEngine(
        base.replace(fault_plan=FaultPlan.seeded(3), retry=RetryPolicy())
    ).run(graph, plan_q, collect_matches=10**9)
    assert not chaotic.failed
    assert chaotic.count == clean.count
    assert sorted(chaotic.matches) == sorted(clean.matches)


def test_nonfatal_faults_survive_in_place(graph, baseline):
    plan = FaultPlan(seed=5, stall_rate=0.5, cas_storm_rate=0.2)
    cfg = TDFSConfig(chunk_size=2, tau_cycles=50, fault_plan=plan)
    result = match(graph, "P1", config=cfg)
    assert not result.failed
    assert result.count == baseline.count
    assert result.recovery.attempts == 1
    assert result.recovery.faults_injected >= 1
    assert result.recovery.faults_survived == result.recovery.faults_injected


def test_stall_stretches_virtual_time(graph):
    base = TDFSConfig()
    fault_free = match(graph, "P1", config=base)
    plan = FaultPlan(schedule=(FaultSpec(FaultKind.STALL, warp=0, factor=8.0),))
    result = match(graph, "P1", config=base.replace(fault_plan=plan))
    assert not result.failed
    assert result.count == fault_free.count
    assert result.elapsed_cycles > fault_free.elapsed_cycles


# --------------------------------------------------------------------------- #
# Determinism: identical seeds → byte-identical survival reports
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [0, 11])
def test_identical_seeds_identical_reports(graph, baseline, seed):
    plan = FaultPlan.seeded(seed)
    cfg = TDFSConfig(fault_plan=plan, retry=RetryPolicy())
    reports = []
    for _ in range(2):
        result = match(graph, "P1", config=cfg)
        reports.append(
            format_survival_report(result, baseline=baseline, plan=plan)
        )
    assert reports[0] == reports[1]
    assert "verdict          : SURVIVED" in reports[0]


def test_different_seeds_differ_somewhere(graph, baseline):
    outcomes = set()
    for seed in range(6):
        plan = FaultPlan.seeded(seed)
        cfg = TDFSConfig(fault_plan=plan, retry=RetryPolicy())
        result = match(graph, "P1", config=cfg)
        outcomes.add(
            (result.recovery.attempts, result.recovery.faults_injected)
        )
    assert len(outcomes) > 1


# --------------------------------------------------------------------------- #
# Multi-GPU failover
# --------------------------------------------------------------------------- #


def test_device_failover_preserves_count(graph):
    base = TDFSConfig(num_gpus=2)
    fault_free = match(graph, "P1", config=base)
    # gpu0 dies on every attempt; its remainder must migrate to gpu1.
    plan = FaultPlan(
        schedule=tuple(
            FaultSpec(FaultKind.OOM, gpu="gpu0", attempt=a, at_op=2)
            for a in range(1, 3)
        )
    )
    cfg = base.replace(
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=2, ladder=("shrink-chunk",)),
    )
    result = match(graph, "P1", config=cfg)
    assert not result.failed
    assert result.count == fault_free.count
    assert result.recovery.devices_failed_over == 1
    assert result.recovery.faults_survived >= 1


def test_failover_disabled_without_retry_policy(graph):
    plan = FaultPlan(
        schedule=(FaultSpec(FaultKind.OOM, gpu="gpu0", attempt=None, at_op=2),)
    )
    cfg = TDFSConfig(num_gpus=2, fault_plan=plan)
    result = match(graph, "P1", config=cfg)
    assert result.failed
    assert "OOM" in result.error


# --------------------------------------------------------------------------- #
# Recovery helpers
# --------------------------------------------------------------------------- #


def test_reshard_groups_round_robin():
    rows = np.arange(10, dtype=np.int64).reshape(5, 2)
    shards = reshard_groups([(rows, 2)], 2)
    assert len(shards) == 2
    assert np.array_equal(shards[0][0][0], rows[0::2])
    assert np.array_equal(shards[1][0][0], rows[1::2])
    assert pending_rows([(rows, 2)]) == 5
    assert pending_rows(None) == 0
    assert pending_rows([]) == 0


def test_reshard_groups_rejects_nonpositive_shards():
    """Regression: num_shards <= 0 used to return [] silently, dropping
    every pending row of a recovery snapshot."""
    rows = np.arange(6, dtype=np.int64).reshape(3, 2)
    with pytest.raises(ReproError, match="num_shards must be >= 1"):
        reshard_groups([(rows, 2)], 0)
    with pytest.raises(ReproError, match="3 pending rows"):
        reshard_groups([(rows, 2)], -1)


def test_reshard_groups_drops_empty_shards():
    """Regression: more shards than rows used to emit empty shard lists,
    which downstream callers would dispatch as no-op device attempts."""
    rows = np.arange(4, dtype=np.int64).reshape(2, 2)
    shards = reshard_groups([(rows, 2)], 5)
    assert len(shards) == 2
    assert all(shard for shard in shards)
    assert sum(pending_rows(s) for s in shards) == 2
    # Preserved rows, positionally aligned with the round-robin rule.
    assert np.array_equal(shards[0][0][0], rows[0::5])
    assert np.array_equal(shards[1][0][0], rows[1::5])


def test_reshard_groups_empty_input():
    assert reshard_groups([], 3) == []


def test_cpu_resume_groups_equals_full_count(graph):
    from repro.baselines.cpu import cpu_count

    engine = TDFSEngine(TDFSConfig())
    plan_q = engine._resolve_plan(get_pattern("P1"))
    full = cpu_count(graph, plan_q)
    edges = graph.directed_edge_array()
    resumed = cpu_count(graph, plan_q, resume_groups=[(edges, 2)])
    assert resumed == full


# --------------------------------------------------------------------------- #
# Satellite fixes: merge_results error aggregation + collect clamp
# --------------------------------------------------------------------------- #


def _mk(count=0, error=None, matches=None):
    r = MatchResult(
        engine="tdfs",
        graph_name="g",
        query_name="q",
        count=count,
        elapsed_cycles=1,
    )
    r.error = error
    r.matches = matches
    return r


def test_merge_results_single_error_unchanged():
    merged = merge_results([_mk(error="OOM"), _mk(count=3)], 2)
    assert merged.error == "OOM"


def test_merge_results_aggregates_all_errors():
    merged = merge_results(
        [_mk(error="OOM"), _mk(count=1), _mk(error="ERR (boom)")], 3
    )
    assert merged.error == "gpu0: OOM | gpu2: ERR (boom)"


def test_merge_results_folds_recovery_stats():
    a, b = _mk(count=1), _mk(count=2)
    a.recovery = RecoveryStats(attempts=2, faults_injected=3, faults_survived=3)
    b.recovery = RecoveryStats(attempts=1, faults_injected=1, faults_survived=1)
    merged = merge_results([a, b], 2)
    assert merged.recovery.attempts == 2
    assert merged.recovery.faults_injected == 4
    assert merged.recovery.faults_survived == 4


def test_multi_gpu_collect_clamps_at_limit(graph):
    limit = 5
    engine = TDFSEngine(TDFSConfig(num_gpus=2))
    plan_q = engine._resolve_plan(get_pattern("P1"))
    result = engine.run(graph, plan_q, collect_matches=limit)
    assert result.matches is not None
    assert len(result.matches) == limit


# --------------------------------------------------------------------------- #
# Satellite fix: StackOverflowError_ rename + deprecation alias
# --------------------------------------------------------------------------- #


def test_stack_overflow_error_renamed_with_alias():
    import repro.errors

    from repro.errors import StackLevelOverflowError

    with pytest.warns(DeprecationWarning, match="StackOverflowError_"):
        old = repro.errors.StackOverflowError_
    assert old is StackLevelOverflowError
    with pytest.raises(AttributeError):
        repro.errors.NoSuchName


# --------------------------------------------------------------------------- #
# CLI + serialization
# --------------------------------------------------------------------------- #


def test_cli_chaos_smoke(capsys):
    from repro.cli import main

    code = main(["chaos", "--seed", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "=== chaos survival report ===" in out
    assert "verdict          : SURVIVED" in out


def test_recovery_stats_in_to_dict(graph, baseline):
    cfg = TDFSConfig(fault_plan=FaultPlan.seeded(0), retry=RetryPolicy())
    result = match(graph, "P1", config=cfg)
    d = result.to_dict()
    assert d["recovery"]["attempts"] == result.recovery.attempts
    assert d["recovery"]["faults_injected"] == result.recovery.faults_injected
    assert d["count"] == baseline.count


def test_poison_value_is_out_of_range(graph):
    assert POISON_VALUE > graph.num_vertices
