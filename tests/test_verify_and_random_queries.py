"""Tests for the verification harness and random query generation."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import TDFSConfig, match
from repro.baselines.cpu import cpu_count
from repro.core.engine import TDFSEngine
from repro.errors import QueryError
from repro.query.plan import compile_plan
from repro.query.random_queries import random_clique_like, random_query
from repro.query.symmetry import automorphisms
from repro.verify import verify_engines

FAST = TDFSConfig(num_warps=8)


class TestRandomQuery:
    def test_connected_and_sized(self):
        for seed in range(20):
            q = random_query(5, extra_edge_prob=0.4, seed=seed)
            assert q.num_vertices == 5
            assert q.num_edges >= 4  # spanning tree

    def test_deterministic(self):
        assert random_query(6, seed=3) == random_query(6, seed=3)

    def test_labels_in_range(self):
        q = random_query(5, num_labels=3, seed=4)
        assert q.is_labeled
        assert all(0 <= q.label(u) < 3 for u in range(5))

    def test_rejects_bad_args(self):
        with pytest.raises(QueryError):
            random_query(1)
        with pytest.raises(QueryError):
            random_query(4, extra_edge_prob=2.0)
        with pytest.raises(QueryError):
            random_query(4, num_labels=0)

    def test_full_density_is_clique(self):
        q = random_query(5, extra_edge_prob=1.0, seed=1)
        assert q.num_edges == 10

    def test_near_clique(self):
        q = random_clique_like(5, drop_edges=2, seed=1)
        assert q.num_edges == 8
        assert len(automorphisms(q)) >= 1

    def test_near_clique_rejects_over_drop(self):
        with pytest.raises(QueryError):
            random_clique_like(4, drop_edges=4)


class TestVerifyEngines:
    def test_ok_on_standard_pattern(self, small_plc):
        report = verify_engines(small_plc, "P1", config=FAST)
        assert report.ok
        assert report.reference_count > 0
        assert "tdfs" in report.results
        assert "OK" in report.summary()

    def test_labeled_skips_pbe(self, labeled_plc):
        report = verify_engines(labeled_plc, "P12", config=FAST)
        assert report.ok
        assert any(e == "pbe" for e, _ in report.skipped)

    def test_overflow_flagged_not_failed(self, skewed_graph):
        cfg = FAST.replace(fixed_capacity=8)
        report = verify_engines(skewed_graph, "P3", config=cfg)
        assert report.ok  # overflow is flagged, not a mismatch
        assert any(e == "stmatch" for e, _ in report.flagged)

    def test_engine_subset(self, small_plc):
        report = verify_engines(small_plc, "P2", config=FAST, engines=["tdfs"])
        assert list(report.results) == ["tdfs"]


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(3, 5),
    density=st.floats(0.0, 1.0),
    qseed=st.integers(0, 500),
)
def test_random_patterns_cross_engine(small_er, k, density, qseed):
    """Fuzz: arbitrary connected patterns agree across engines."""
    query = random_query(k, extra_edge_prob=density, seed=qseed)
    plan = compile_plan(query)
    expect = cpu_count(small_er, plan)
    got = TDFSEngine(TDFSConfig(num_warps=4)).run(small_er, plan)
    assert got.count == expect
    hybrid = match(small_er, query, engine="hybrid", config=TDFSConfig(num_warps=4))
    assert hybrid.count == expect


@settings(max_examples=10, deadline=None)
@given(qseed=st.integers(0, 300))
def test_random_labeled_patterns(labeled_plc, qseed):
    query = random_query(4, extra_edge_prob=0.5, num_labels=4, seed=qseed)
    plan = compile_plan(query)
    expect = cpu_count(labeled_plc, plan)
    got = TDFSEngine(TDFSConfig(num_warps=4)).run(labeled_plc, plan)
    assert got.count == expect


class TestResultSerialization:
    def test_to_dict_json_roundtrip(self, small_plc):
        from repro.query.patterns import get_pattern

        result = TDFSEngine(FAST).run(small_plc, get_pattern("P1"))
        payload = result.to_dict()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["count"] == result.count
        assert back["engine"] == "tdfs"
        assert back["memory"]["stack_bytes"] == result.memory.stack_bytes

    def test_to_dict_counts_collected(self, small_plc):
        from repro.query.patterns import get_pattern

        result = TDFSEngine(FAST).run(
            small_plc, get_pattern("P1"), collect_matches=7
        )
        assert result.to_dict()["num_matches_collected"] == 7
