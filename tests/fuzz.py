"""Shared seeded case generators for the conformance/differential suites.

Every property-style suite in this repo (engine differential, kernel
conformance, shard conformance) sweeps the same case space: small seeded
graphs from two families, seeded random queries, and a handful of engine
configs chosen to keep distinct machinery live (timeout-steal Q_task
traffic, half-steal, reuse off).  This module is the single source of that
case space, so a new suite gets the sweep by importing it — and a tweak to
the generators re-tunes every suite at once.

``REPRO_DIFF_SEED`` offsets the whole grid: CI runs each suite under two
fixed offsets, so every push explores a fresh but reproducible slice.
Suites address disjoint regions of a slice via the ``base`` offsets they
pass to :func:`case_graph`/:func:`case_query` (0 unlabeled, +500 labeled,
+900 steal, …) — keep new suites on fresh offsets so slices never overlap.
"""

from __future__ import annotations

import os

from repro import TDFSConfig
from repro.core.config import Strategy
from repro.graph.builder import relabel_random
from repro.graph.generators import erdos_renyi, power_law_cluster
from repro.query.random_queries import random_query

#: CI sets REPRO_DIFF_SEED to shift the whole grid; default slice is 0.
SEED_BASE = int(os.environ.get("REPRO_DIFF_SEED", "0")) * 10_000

FAST = TDFSConfig(num_warps=8)

#: Aggressive decomposition: tiny τ and chunk so the timeout-steal path
#: (Q_task enqueue/dequeue, stack rebuilds) is live on these small graphs.
STEAL = TDFSConfig(num_warps=8, tau_cycles=400, chunk_size=2)

#: STMatch-style work stealing, exercised as a distinct engine schedule.
HALF_STEAL = TDFSConfig(
    num_warps=8, strategy=Strategy.HALF_STEAL, chunk_size=2
)

#: Named config variants for sweeps that iterate regimes rather than
#: hand-pick them (the shard conformance suite does).
CONFIG_VARIANTS: dict[str, TDFSConfig] = {
    "fast": FAST,
    "steal": STEAL,
    "half-steal": HALF_STEAL,
    "no-reuse": FAST.replace(enable_reuse=False),
    "scalar-kernel": FAST.replace(kernel_backend="scalar"),
}


def case_graph(seed: int):
    """Deterministic small graph, alternating family by seed."""
    if seed % 2 == 0:
        return erdos_renyi(90 + seed % 5 * 10, 6.0, seed=seed, name=f"er-{seed}")
    return power_law_cluster(
        100 + seed % 3 * 20, 3, p_triangle=0.5, seed=seed, name=f"plc-{seed}"
    )


def case_query(seed: int, num_labels=None):
    k = 3 + seed % 3  # 3..5 query vertices
    density = (seed % 7) / 6.0
    return random_query(
        k, extra_edge_prob=density, num_labels=num_labels, seed=seed
    )


def case_labeled_graph(seed: int, num_labels: int = 4):
    """The seed's graph with deterministic random labels attached."""
    graph = case_graph(seed)
    return relabel_random(
        graph, num_labels, seed=seed, name=f"{graph.name}-L{num_labels}"
    )


def fuzz_cases(count: int, base: int = 0, num_labels=None):
    """Yield ``(seed, graph, query)`` tuples for one suite's sweep.

    ``base`` offsets this sweep within the slice (so suites don't re-run
    each other's cases); ``num_labels`` switches to labeled graphs and
    label-constrained queries.
    """
    for case in range(count):
        seed = SEED_BASE + base + case
        if num_labels:
            graph = case_labeled_graph(seed, num_labels)
        else:
            graph = case_graph(seed)
        yield seed, graph, case_query(seed, num_labels=num_labels)


def delta_stream_cases(
    count: int,
    base: int = 0,
    num_labels=None,
    batches: int = 4,
    max_edges: int = 5,
):
    """Yield ``(seed, graph, query, stream)`` for dynamic-graph sweeps.

    ``stream`` is the seeded delta stream of :func:`repro.dynamic.
    random_delta_stream` over the case's graph — a list of ``(batch,
    successor_graph)`` pairs whose batches deliberately include duplicate
    adds of existing edges, remove-then-re-add within one batch, removals
    of absent edges, and vertex-growing adds.  Shared by the dynamic
    conformance suite and the serve tests so both walk identical streams.
    """
    for seed, graph, query in fuzz_cases(count, base=base, num_labels=num_labels):
        from repro.dynamic import random_delta_stream

        stream = list(
            random_delta_stream(
                graph, batches, seed=seed, max_edges=max_edges
            )
        )
        yield seed, graph, query, stream
