"""Unit tests for plan compilation and the reuse table."""

import pytest

from repro.errors import PlanError
from repro.query.ordering import choose_matching_order
from repro.query.pattern import QueryGraph
from repro.query.patterns import get_pattern, pattern_names
from repro.query.plan import compile_plan
from repro.query.reuse import compute_reuse_plan, reuse_savings


class TestCompilePlan:
    def test_all_patterns_compile(self):
        for name in pattern_names():
            plan = compile_plan(get_pattern(name))
            assert plan.num_levels == plan.query.num_vertices
            assert len(plan.backward) == plan.num_levels
            assert len(plan.constraints) == plan.num_levels
            assert len(plan.reuse) == plan.num_levels

    def test_explicit_order_validated(self):
        q = QueryGraph(4, [(0, 1), (1, 2), (2, 3)])
        with pytest.raises(PlanError):
            compile_plan(q, order=[0, 3, 1, 2])

    def test_explicit_order_used(self):
        q = get_pattern("P2")
        plan = compile_plan(q, order=[3, 2, 1, 0])
        assert plan.order == (3, 2, 1, 0)

    def test_symmetry_disabled(self):
        plan = compile_plan(get_pattern("P2"), enable_symmetry=False)
        assert not plan.symmetry_enabled
        assert all(not c for c in plan.constraints)
        assert plan.aut_size == 24  # aut size still reported

    def test_reuse_disabled(self):
        plan = compile_plan(get_pattern("P2"), enable_reuse=False)
        assert all(not e.reuses for e in plan.reuse)

    def test_single_vertex_rejected(self):
        with pytest.raises(PlanError):
            compile_plan(QueryGraph(1, []))

    def test_labels_follow_order(self):
        plan = compile_plan(get_pattern("P13"))  # labeled K4
        for i, u in enumerate(plan.order):
            assert plan.labels[i] == plan.query.label(u)

    def test_degrees_follow_order(self):
        plan = compile_plan(get_pattern("P4"))
        for i, u in enumerate(plan.order):
            assert plan.degrees[i] == plan.query.degree(u)

    def test_position_of_inverse(self):
        plan = compile_plan(get_pattern("P9"))
        for i, u in enumerate(plan.order):
            assert plan.position_of(u) == i

    def test_describe_mentions_every_level(self):
        plan = compile_plan(get_pattern("P5"))
        text = plan.describe()
        for i in range(plan.num_levels):
            assert f"level {i + 1}" in text


class TestReusePlan:
    def test_diamond_reuses(self):
        # P1 diamond: u0 and u3 share the same two backward neighbors, so
        # the later position reuses the earlier (the paper's Fig. 7 case).
        q = get_pattern("P1")
        order = choose_matching_order(q)
        plan = compute_reuse_plan(q, order)
        assert any(e.reuses for e in plan)

    def test_reuse_source_is_subset(self):
        from repro.query.ordering import backward_neighbors

        for name in pattern_names():
            q = get_pattern(name)
            order = choose_matching_order(q)
            back = backward_neighbors(q, order)
            plan = compute_reuse_plan(q, order)
            for j, entry in enumerate(plan):
                if entry.reuses:
                    src = set(back[entry.source])
                    tgt = set(back[j])
                    assert src <= tgt
                    assert set(entry.remaining) == tgt - src
                    assert len(src) >= 2

    def test_no_reuse_for_path(self):
        q = QueryGraph(4, [(0, 1), (1, 2), (2, 3)])
        order = choose_matching_order(q)
        plan = compute_reuse_plan(q, order)
        assert all(not e.reuses for e in plan)
        assert reuse_savings(plan) == 0

    def test_savings_counted(self):
        q = get_pattern("P1")
        order = choose_matching_order(q)
        assert reuse_savings(compute_reuse_plan(q, order)) >= 1
