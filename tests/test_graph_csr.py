"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.dynamic import DeltaBatch, DeltaError
from repro.errors import GraphError
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_basic_properties(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 3
        assert triangle.num_directed_edges == 6
        assert triangle.max_degree == 2
        assert triangle.avg_degree == pytest.approx(2.0)

    def test_empty_graph(self):
        g = from_edges([], num_vertices=5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.max_degree == 0
        assert g.avg_degree == 0.0

    def test_isolated_vertices_allowed(self):
        g = from_edges([(0, 1)], num_vertices=4)
        assert g.num_vertices == 4
        assert g.degree(2) == 0
        assert g.degree(3) == 0

    def test_validation_rejects_bad_row_ptr(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0, 1], dtype=np.int32))

    def test_validation_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph(
                np.array([0, 1]), np.array([5], dtype=np.int32)
            )

    def test_validation_rejects_unsorted_adjacency(self):
        row_ptr = np.array([0, 2, 3, 4])
        col = np.array([2, 1, 0, 0], dtype=np.int32)
        with pytest.raises(GraphError):
            CSRGraph(row_ptr, col)

    def test_validation_rejects_self_loop(self):
        row_ptr = np.array([0, 1, 2])
        col = np.array([0, 0], dtype=np.int32)
        with pytest.raises(GraphError):
            CSRGraph(row_ptr, col)

    def test_label_length_checked(self, triangle):
        with pytest.raises(GraphError):
            CSRGraph(triangle.row_ptr, triangle.col_idx, labels=np.array([1, 2]))


class TestAccessors:
    def test_neighbors_sorted(self, k4):
        for v in range(4):
            adj = k4.neighbors(v)
            assert list(adj) == sorted(adj)
            assert v not in adj

    def test_has_edge(self, k4):
        assert k4.has_edge(0, 3)
        assert k4.has_edge(3, 0)

    def test_has_edge_negative(self):
        g = from_edges([(0, 1), (1, 2)])
        assert not g.has_edge(0, 2)

    def test_degrees_vector(self, k4):
        assert list(k4.degrees) == [3, 3, 3, 3]

    def test_label_default_zero(self, k4):
        assert not k4.is_labeled
        assert k4.label(0) == 0
        assert k4.num_labels == 1

    def test_with_labels_roundtrip(self, k4):
        lab = k4.with_labels([0, 1, 2, 3])
        assert lab.is_labeled
        assert lab.label(2) == 2
        assert lab.num_labels == 4
        back = lab.without_labels()
        assert not back.is_labeled
        assert back == k4


class TestEdgeIteration:
    def test_edges_each_once(self, k4):
        edges = list(k4.edges())
        assert len(edges) == 6
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == 6

    def test_edge_array_matches_edges(self, small_plc):
        arr = small_plc.edge_array()
        assert arr.shape == (small_plc.num_edges, 2)
        assert set(map(tuple, arr.tolist())) == set(small_plc.edges())

    def test_directed_edge_array_both_directions(self, triangle):
        arr = triangle.directed_edge_array()
        assert arr.shape == (6, 2)
        pairs = set(map(tuple, arr.tolist()))
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_memory_bytes_positive(self, k4):
        assert k4.memory_bytes() > 0
        labeled = k4.with_labels([0, 0, 1, 1])
        assert labeled.memory_bytes() > k4.memory_bytes()


class TestEquality:
    def test_equal_structures(self):
        a = from_edges([(0, 1), (1, 2)])
        b = from_edges([(1, 2), (0, 1)])
        assert a == b

    def test_label_inequality(self, k4):
        assert k4 != k4.with_labels([0, 0, 0, 1])


def assert_valid_csr(graph):
    """Re-run full CSR validation on a graph built with validate=False."""
    CSRGraph(graph.row_ptr, graph.col_idx, graph.labels, graph.name)


class TestApplyDelta:
    def test_remove_edges(self, k4):
        out = k4.apply_delta(DeltaBatch.make(remove=[(0, 1), (2, 3)]))
        assert_valid_csr(out)
        assert out == from_edges([(0, 2), (0, 3), (1, 2), (1, 3)])
        # receiver untouched (immutability)
        assert k4.num_edges == 6

    def test_add_edges(self):
        g = from_edges([(0, 1), (2, 3)], num_vertices=4)
        out = g.apply_delta(DeltaBatch.make(add=[(1, 2), (0, 3)]))
        assert_valid_csr(out)
        assert out == from_edges([(0, 1), (2, 3), (1, 2), (0, 3)])

    def test_vertex_growing_add(self, triangle):
        out = triangle.apply_delta(DeltaBatch.make(add=[(0, 5)]))
        assert_valid_csr(out)
        assert out.num_vertices == 6
        assert out.has_edge(0, 5)
        assert out.degree(4) == 0

    def test_remove_then_readd_is_noop(self, k4):
        out = k4.apply_delta(DeltaBatch.make(add=[(0, 1)], remove=[(0, 1)]))
        assert out == k4

    def test_duplicate_add_of_existing_edge_is_noop(self, k4):
        assert k4.apply_delta(DeltaBatch.make(add=[(0, 1)])) == k4

    def test_remove_absent_edge_is_noop(self, triangle):
        assert triangle.apply_delta(DeltaBatch.make(remove=[(0, 7)])) == triangle

    def test_empty_batch(self, k4):
        assert k4.apply_delta(DeltaBatch.make()) == k4

    def test_labels_extended_with_zero(self, k4):
        g = k4.with_labels([1, 2, 3, 1])
        out = g.apply_delta(DeltaBatch.make(add=[(3, 5)]))
        assert_valid_csr(out)
        assert out.is_labeled
        assert list(out.labels) == [1, 2, 3, 1, 0, 0]

    def test_remove_all_edges(self, triangle):
        out = triangle.apply_delta(
            DeltaBatch.make(remove=[(0, 1), (1, 2), (0, 2)])
        )
        assert_valid_csr(out)
        assert out.num_edges == 0
        assert out.num_vertices == 3

    def test_matches_from_edges_rebuild(self, small_plc):
        # The vectorized splice must agree with a from-scratch rebuild.
        batch = DeltaBatch.make(
            add=[(0, small_plc.num_vertices - 1), (1, 2), (3, 40)],
            remove=list(small_plc.edges())[:5],
        )
        out = small_plc.apply_delta(batch)
        assert_valid_csr(out)
        net = batch.normalize(small_plc)
        expected = set(small_plc.edges())
        expected -= {tuple(r) for r in net.removed.tolist()}
        expected |= {tuple(r) for r in net.added.tolist()}
        rebuilt = from_edges(
            sorted(expected), num_vertices=net.num_vertices
        )
        assert out == rebuilt

    def test_reversed_pairs_normalized(self, k4):
        out = k4.apply_delta(DeltaBatch.make(remove=[(1, 0)]))
        assert not out.has_edge(0, 1)


class TestDeltaBatchValidation:
    def test_self_loop_add_rejected(self):
        with pytest.raises(DeltaError):
            DeltaBatch.make(add=[(2, 2)])

    def test_duplicate_add_rejected(self):
        with pytest.raises(DeltaError):
            DeltaBatch.make(add=[(0, 1), (1, 0)])

    def test_negative_id_rejected(self):
        with pytest.raises(DeltaError):
            DeltaBatch.make(add=[(-1, 2)])

    def test_delta_error_is_graph_error(self):
        assert issubclass(DeltaError, GraphError)

    def test_remove_dedupes_silently(self):
        batch = DeltaBatch.make(remove=[(0, 1), (1, 0), (2, 2)])
        assert len(batch.remove) == 1  # dup collapsed, self-loop dropped

    def test_size_and_max_vertex(self):
        batch = DeltaBatch.make(add=[(0, 9)], remove=[(3, 4)])
        assert batch.size == 2
        assert batch.max_vertex() == 9
        assert DeltaBatch.make().is_empty
