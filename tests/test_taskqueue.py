"""Unit tests for the lock-free circular task queue (Algorithm 3)."""

import pytest

from repro.errors import ReproError
from repro.taskqueue.ring import LockFreeTaskQueue
from repro.taskqueue.tasks import EMPTY, PLACEHOLDER, Task


def make_queue(tasks: int = 4) -> LockFreeTaskQueue:
    return LockFreeTaskQueue(capacity_ints=tasks * 3)


class TestTaskEncoding:
    def test_three_vertex(self):
        t = Task(1, 2, 3)
        assert t.depth == 3

    def test_edge_task(self):
        t = Task.edge(5, 7)
        assert t.depth == 2
        assert t.v3 == PLACEHOLDER

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            Task(-5, 2, 3).validate()

    def test_validate_accepts_placeholder(self):
        Task(1, 2, PLACEHOLDER).validate()


class TestQueueBasics:
    def test_capacity_must_be_multiple_of_three(self):
        with pytest.raises(ReproError):
            LockFreeTaskQueue(capacity_ints=10)

    def test_fifo_order(self):
        q = make_queue(4)
        for i in range(3):
            ok, _ = q.enqueue(Task(i, i + 1, i + 2))
            assert ok
        out = [q.dequeue()[0] for _ in range(3)]
        assert out == [Task(0, 1, 2), Task(1, 2, 3), Task(2, 3, 4)]

    def test_empty_dequeue_returns_none(self):
        q = make_queue()
        task, cycles = q.dequeue()
        assert task is None
        assert cycles > 0
        assert q.dequeue_failures == 1

    def test_full_enqueue_returns_false(self):
        q = make_queue(2)
        assert q.enqueue(Task(1, 1, 1))[0]
        assert q.enqueue(Task(2, 2, 2))[0]
        ok, _ = q.enqueue(Task(3, 3, 3))
        assert not ok
        assert q.enqueue_failures == 1
        # The failed enqueue must not corrupt the size accounting.
        assert q.num_tasks == 2

    def test_wraparound(self):
        q = make_queue(2)
        for round_ in range(10):
            assert q.enqueue(Task(round_, 0, 0))[0]
            task, _ = q.dequeue()
            assert task.v1 == round_

    def test_full_ring_handoff(self):
        # Fill completely, drain completely, several times: front == back
        # collisions exercise the CAS/exchange hand-off.
        q = make_queue(3)
        for round_ in range(5):
            for i in range(3):
                assert q.enqueue(Task(round_, i, 9))[0]
            assert not q.enqueue(Task(99, 99, 99))[0]
            got = q.drain()
            assert [t.v2 for t in got] == [0, 1, 2]

    def test_edge_tasks_roundtrip_placeholder(self):
        q = make_queue()
        q.enqueue(Task.edge(3, 4))
        task, _ = q.dequeue()
        assert task == Task(3, 4, PLACEHOLDER)
        assert task.depth == 2

    def test_peak_task_tracking(self):
        q = make_queue(8)
        for i in range(5):
            q.enqueue(Task(i, i, i))
        q.drain()
        assert q.peak_tasks == 5

    def test_memory_bytes(self):
        q = LockFreeTaskQueue(capacity_ints=3 * 1000)
        assert q.memory_bytes() == 3 * 1000 * 4

    def test_slots_cleared_after_dequeue(self):
        q = make_queue(2)
        q.enqueue(Task(1, 2, 3))
        q.dequeue()
        assert all(v == EMPTY for v in q.ring.snapshot())

    def test_cycle_costs_accumulate(self):
        q = make_queue()
        _, enq_cycles = q.enqueue(Task(1, 2, 3))
        _, deq_cycles = q.dequeue()
        # 2 atomics + 3 slot copies at minimum, each direction.
        assert enq_cycles >= 2 * q.cost.atomic
        assert deq_cycles >= 2 * q.cost.atomic
