"""Tests for multi-GPU round-robin scale-out (paper Fig. 12)."""

import pytest

from repro import TDFSConfig
from repro.baselines.cpu import cpu_count
from repro.core.engine import TDFSEngine
from repro.core.multi_gpu import merge_results
from repro.core.result import MatchResult
from repro.query.patterns import get_pattern
from repro.query.plan import compile_plan


def run_gpus(graph, pattern, n):
    cfg = TDFSConfig(num_warps=8, num_gpus=n)
    return TDFSEngine(cfg).run(graph, get_pattern(pattern))


class TestMultiGPU:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_counts_independent_of_gpu_count(self, small_plc, n):
        plan = compile_plan(get_pattern("P3"))
        expect = cpu_count(small_plc, plan)
        assert run_gpus(small_plc, "P3", n).count == expect

    def test_speedup_with_more_gpus(self, small_plc):
        one = run_gpus(small_plc, "P3", 1)
        four = run_gpus(small_plc, "P3", 4)
        assert four.elapsed_cycles < one.elapsed_cycles
        # Round-robin should scale well (paper: "ideal speedup"); allow
        # generous slack for the small test graph.
        speedup = one.elapsed_cycles / four.elapsed_cycles
        assert speedup > 1.8

    def test_num_gpus_recorded(self, small_plc):
        assert run_gpus(small_plc, "P1", 2).num_gpus == 2

    def test_labeled_multi_gpu(self, labeled_plc):
        cfg = TDFSConfig(num_warps=8, num_gpus=2)
        plan = compile_plan(get_pattern("P12"))
        expect = cpu_count(labeled_plc, plan)
        assert TDFSEngine(cfg).run(labeled_plc, plan).count == expect


class TestMergeResults:
    def _mk(self, count, elapsed, error=None):
        r = MatchResult(
            engine="tdfs",
            graph_name="g",
            query_name="q",
            count=count,
            elapsed_cycles=elapsed,
        )
        r.error = error
        return r

    def test_counts_sum_elapsed_max(self):
        merged = merge_results([self._mk(5, 100), self._mk(7, 250)], 2)
        assert merged.count == 12
        assert merged.elapsed_cycles == 250
        assert merged.num_gpus == 2

    def test_error_propagates(self):
        merged = merge_results([self._mk(5, 100), self._mk(0, 10, "OOM")], 2)
        assert merged.error == "OOM"

    def test_overflow_propagates(self):
        a, b = self._mk(1, 1), self._mk(1, 1)
        b.overflowed = True
        assert merge_results([a, b], 2).overflowed
