"""Tests for graph I/O, the dataset registry, and graph statistics."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.analysis import compute_stats, count_triangles, degree_histogram
from repro.graph.builder import from_edges
from repro.graph.datasets import (
    BIG_DATASETS,
    DATASETS,
    MODERATE_DATASETS,
    dataset_names,
    load_dataset,
)
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path, small_plc):
        path = tmp_path / "g.txt"
        save_edge_list(small_plc, path)
        loaded = load_edge_list(path)
        assert loaded.num_edges == small_plc.num_edges
        assert np.array_equal(loaded.col_idx, small_plc.col_idx)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n% other\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_bad_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_labels_sidecar(self, tmp_path):
        gpath = tmp_path / "g.txt"
        lpath = tmp_path / "labels.txt"
        gpath.write_text("0 1\n1 2\n")
        lpath.write_text("0\n1\n0\n")
        g = load_edge_list(gpath, labels_path=lpath)
        assert g.is_labeled
        assert g.label(1) == 1


class TestNpzIO:
    def test_roundtrip(self, tmp_path, small_plc):
        path = tmp_path / "g.npz"
        save_npz(small_plc, path)
        loaded = load_npz(path)
        assert loaded == small_plc
        assert loaded.name == small_plc.name

    def test_labeled_roundtrip(self, tmp_path, labeled_plc):
        path = tmp_path / "g.npz"
        save_npz(labeled_plc, path)
        loaded = load_npz(path)
        assert loaded.is_labeled
        assert np.array_equal(loaded.labels, labeled_plc.labels)


class TestDatasets:
    def test_twelve_registered(self):
        assert len(DATASETS) == 12
        assert len(MODERATE_DATASETS) == 8
        assert len(BIG_DATASETS) == 4

    def test_category_filter(self):
        assert dataset_names("moderate") == MODERATE_DATASETS
        assert dataset_names("big") == BIG_DATASETS
        assert set(dataset_names()) == set(DATASETS)
        with pytest.raises(GraphError):
            dataset_names("huge")

    def test_unknown_dataset(self):
        with pytest.raises(GraphError):
            load_dataset("twitter")

    def test_moderate_unlabeled_big_labeled(self):
        assert not load_dataset("dblp").is_labeled
        big = load_dataset("friendster")
        assert big.is_labeled
        assert big.num_labels == 4

    def test_label_override(self):
        g8 = load_dataset("friendster", num_labels=8)
        assert g8.num_labels == 8
        g0 = load_dataset("orkut", num_labels=0)
        assert not g0.is_labeled

    def test_deterministic(self):
        load_dataset.cache_clear()
        a = load_dataset("youtube")
        load_dataset.cache_clear()
        b = load_dataset("youtube")
        assert a == b

    def test_skewed_graphs_exceed_fixed_capacity(self):
        # The STMatch-overflow story requires this separation (paper IV-G).
        from repro.core.config import STMATCH_FIXED_CAPACITY

        for name in ("youtube", "pokec", "orkut", "sinaweibo"):
            g = load_dataset(name, num_labels=0)
            assert g.max_degree > STMATCH_FIXED_CAPACITY, name
        for name in ("amazon", "dblp", "imdb", "cit-patents", "facebook", "web-google"):
            g = load_dataset(name)
            assert g.max_degree <= STMATCH_FIXED_CAPACITY, name

    def test_paper_stats_attached(self):
        spec = DATASETS["friendster"]
        assert spec.paper.num_edges == 1_806_067_135


class TestAnalysis:
    def test_stats_shape(self, k4):
        s = compute_stats(k4)
        assert s.num_vertices == 4
        assert s.num_edges == 6
        assert s.avg_degree == pytest.approx(3.0)
        assert s.degree_skew == pytest.approx(1.0)
        # unlabeled: label-frequency columns collapse to their neutral values
        assert s.max_label_freq == 1.0
        assert s.min_label_freq == 1.0
        assert s.max_label_avg_degree == pytest.approx(3.0)
        assert len(s.row()) == 10

    def test_stats_label_columns(self, k4):
        labeled = k4.with_labels([0, 0, 0, 1])
        s = compute_stats(labeled)
        assert s.max_label_freq == pytest.approx(0.75)
        assert s.min_label_freq == pytest.approx(0.25)
        assert s.max_label_avg_degree == pytest.approx(3.0)
        assert len(s.row()) == 10

    def test_triangles_k4(self, k4):
        assert count_triangles(k4) == 4

    def test_triangles_triangle(self, triangle):
        assert count_triangles(triangle) == 1

    def test_triangles_bipartite_zero(self):
        g = from_edges([(0, 2), (0, 3), (1, 2), (1, 3)])
        assert count_triangles(g) == 0

    def test_degree_histogram(self, small_plc):
        edges, counts = degree_histogram(small_plc, bins=5)
        assert counts.sum() == (small_plc.degrees > 0).sum()
        assert len(edges) == 6
