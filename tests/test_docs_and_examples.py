"""Repository-consistency tests: docs reference real files, examples run."""

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestDocsConsistency:
    def test_design_md_mentions_every_bench_file(self):
        design = open(os.path.join(REPO, "DESIGN.md")).read()
        bench_dir = os.path.join(REPO, "benchmarks")
        for name in os.listdir(bench_dir):
            if name.startswith("bench_") and name.endswith(".py"):
                assert name in design, f"DESIGN.md does not mention {name}"

    def test_design_md_lists_every_experiment(self):
        design = open(os.path.join(REPO, "DESIGN.md")).read()
        for exp in ("Table I", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
                    "Table II", "Table III", "Table IV"):
            assert exp in design, exp

    def test_readme_references_existing_examples(self):
        readme = open(os.path.join(REPO, "README.md")).read()
        for name in os.listdir(os.path.join(REPO, "examples")):
            if name.endswith(".py"):
                assert name in readme, f"README does not mention {name}"

    def test_every_package_module_has_docstring(self):
        src = os.path.join(REPO, "src", "repro")
        missing = []
        for root, _dirs, files in os.walk(src):
            for name in files:
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                with open(path) as f:
                    head = f.read(400).lstrip()
                if not head.startswith(('"""', "'''", '#')):
                    missing.append(path)
        assert not missing, f"modules without docstrings: {missing}"


class TestExamples:
    def test_example_scripts_exist(self):
        examples = os.listdir(os.path.join(REPO, "examples"))
        scripts = [e for e in examples if e.endswith(".py")]
        assert len(scripts) >= 3
        assert "quickstart.py" in scripts

    @pytest.mark.slow
    def test_quickstart_runs(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO, "examples", "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "CPU reference agrees" in proc.stdout
