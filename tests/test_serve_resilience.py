"""Tests for supervised serving (:mod:`repro.serve.resilience`).

Covers the circuit breaker's open/half-open schedule under a fake clock,
the poison quarantine, settle-exactly-once claiming, and end-to-end chaos:
workers killed or wedged mid-match with every request settling and every
resumed count bit-equal to the fault-free baseline.

``REPRO_FAULT_SEED`` (default 0) reseeds the random chaos components so CI
can sweep multiple fault interleavings over the same assertions.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import TDFSConfig, match
from repro.errors import ReproError
from repro.faults import WorkerFaultKind, WorkerFaultPlan, WorkerFaultSpec
from repro.serve import (
    AdmissionRejected,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    MatchRequest,
    MatchService,
    PoisonedRequestError,
    Quarantine,
    QueueEntry,
    ServeConfig,
    SupervisorConfig,
)

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

SIG = ("g", "planfp")


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


def make_breaker(**overrides) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    defaults = dict(
        threshold=3,
        window_s=30.0,
        open_s=1.0,
        max_open_s=30.0,
        jitter=0.2,
        seed=SEED,
        clock=clock,
    )
    defaults.update(overrides)
    return CircuitBreaker(**defaults), clock


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        b, _ = make_breaker()
        b.record_failure(SIG)
        b.record_failure(SIG)
        assert b.state(SIG) is BreakerState.CLOSED
        b.check(SIG)  # still admitting
        b.record_failure(SIG)
        assert b.state(SIG) is BreakerState.OPEN
        assert b.total_opens == 1

    def test_open_rejects_until_backoff_elapses(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record_failure(SIG)
        with pytest.raises(CircuitOpenError) as exc:
            b.check(SIG)
        assert exc.value.signature == SIG
        assert 0.0 < exc.value.retry_after_s <= 1.2  # jitter <= 20%
        assert b.total_rejections == 1

    def test_half_open_admits_single_probe(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record_failure(SIG)
        clock.advance(1.3)  # past base 1.0s even at +20% jitter
        b.check(SIG)  # the probe: no raise, transitions to HALF_OPEN
        assert b.state(SIG) is BreakerState.HALF_OPEN
        with pytest.raises(CircuitOpenError, match="probe already in flight"):
            b.check(SIG)
        b.record_success(SIG)
        assert b.state(SIG) is BreakerState.CLOSED
        b.check(SIG)  # closed again: admits freely

    def test_probe_failure_reopens_with_doubled_backoff(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record_failure(SIG)
        first = b._breakers[SIG].open_for_s
        clock.advance(1.3)
        b.check(SIG)
        b.record_failure(SIG)  # probe failed
        assert b.state(SIG) is BreakerState.OPEN
        second = b._breakers[SIG].open_for_s
        # Base doubles 1.0 -> 2.0; +-20% jitter cannot mask a 2x step.
        assert second > first
        assert second >= 2.0 * 0.8

    def test_backoff_caps_at_max_open_s(self):
        b, clock = make_breaker(jitter=0.0, max_open_s=4.0)
        for _ in range(3):
            b.record_failure(SIG)
        for _ in range(6):  # keep failing every probe: 1, 2, 4, 4, ...
            clock.advance(b._breakers[SIG].open_for_s + 0.01)
            b.check(SIG)
            b.record_failure(SIG)
        assert b._breakers[SIG].open_for_s == 4.0

    def test_jittered_backoff_is_seed_deterministic(self):
        b1, _ = make_breaker(seed=1)
        b2, _ = make_breaker(seed=1)
        b3, _ = make_breaker(seed=2)
        vals1 = [b1._jittered_open_s(SIG, k) for k in (1, 2, 3)]
        vals2 = [b2._jittered_open_s(SIG, k) for k in (1, 2, 3)]
        vals3 = [b3._jittered_open_s(SIG, k) for k in (1, 2, 3)]
        assert vals1 == vals2
        assert vals1 != vals3
        for k, v in zip((1, 2, 3), vals1):
            base = min(30.0, 1.0 * 2 ** (k - 1))
            assert base * 0.8 <= v <= base * 1.2

    def test_straggler_success_does_not_close_open_circuit(self):
        b, _ = make_breaker()
        for _ in range(3):
            b.record_failure(SIG)
        b.record_success(SIG)  # a redelivered entry finishing late
        assert b.state(SIG) is BreakerState.OPEN

    def test_signatures_are_independent(self):
        b, _ = make_breaker()
        other = ("g", "otherfp")
        for _ in range(3):
            b.record_failure(SIG)
        assert b.state(SIG) is BreakerState.OPEN
        assert b.state(other) is BreakerState.CLOSED
        b.check(other)
        assert b.open_count() == 1

    def test_transition_callback_may_reenter_breaker(self):
        """Regression: callbacks read gauges (open_count) and must not
        deadlock against the breaker's own lock."""
        events = []

        def on_transition(sig, old, new):
            events.append((sig, old, new, b.open_count()))

        clock = FakeClock()
        b = CircuitBreaker(
            threshold=1, open_s=1.0, jitter=0.0, clock=clock,
            on_transition=on_transition,
        )
        t = threading.Thread(target=lambda: b.record_failure(SIG), daemon=True)
        t.start()
        t.join(5.0)
        assert not t.is_alive(), "breaker deadlocked in on_transition"
        assert events == [(SIG, BreakerState.CLOSED, BreakerState.OPEN, 1)]


class TestQuarantine:
    FP = ("g", "planfp", "tdfs", "cfgfp")

    def test_poison_then_reject(self):
        q = Quarantine()
        q.check(self.FP)  # unknown: no raise
        q.poison(self.FP, "POISONED (worker-crash x3)", request_id=7)
        with pytest.raises(PoisonedRequestError) as exc:
            q.check(self.FP)
        assert exc.value.fingerprint == self.FP
        assert "worker-crash" in exc.value.failure
        assert exc.value.request_id == 7
        assert q.total_poisoned == 1
        assert q.total_rejections == 1

    def test_release_lifts_quarantine(self):
        q = Quarantine()
        q.poison(self.FP, "POISONED", request_id=1)
        assert q.release(self.FP)
        q.check(self.FP)  # no raise
        assert not q.release(self.FP)

    def test_capacity_evicts_oldest(self):
        q = Quarantine(capacity=2)
        fps = [("g", f"p{i}", "tdfs", "c") for i in range(3)]
        for i, fp in enumerate(fps):
            q.poison(fp, "POISONED", request_id=i)
        q.check(fps[0])  # evicted: admitted again
        with pytest.raises(PoisonedRequestError):
            q.check(fps[2])
        assert len(q) == 2


class TestClaimSettle:
    @staticmethod
    def make_entry() -> QueueEntry:
        return QueueEntry(
            request=None, ticket=None, request_id=1, priority=0,
            batch_key="k", submitted_at=0.0,
        )

    def test_single_winner(self):
        e = self.make_entry()
        assert not e.settled
        assert e.claim_settle()
        assert e.settled
        assert not e.claim_settle()

    def test_racing_claims_have_one_winner(self):
        e = self.make_entry()
        wins = []
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            if e.claim_settle():
                wins.append(1)

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


# --------------------------------------------------------------------------- #
# End-to-end chaos
# --------------------------------------------------------------------------- #


def make_supervised(
    fast_config,
    plan: WorkerFaultPlan,
    *,
    workers: int = 2,
    checkpoint_every_events: int = 30,
    heartbeat_timeout_s: float = 0.4,
    max_redeliveries: int = 2,
    **sup_overrides,
) -> MatchService:
    sup = SupervisorConfig(
        watchdog_interval_s=0.02,
        heartbeat_timeout_s=heartbeat_timeout_s,
        max_redeliveries=max_redeliveries,
        checkpoint_every_events=checkpoint_every_events,
        seed=SEED,
        **sup_overrides,
    )
    return MatchService(ServeConfig(
        workers=workers,
        enable_result_cache=False,
        match_config=fast_config,
        supervisor=sup,
        worker_faults=plan,
    ))


def submit_uncached(svc, pattern: str, **kwargs):
    return svc.submit(MatchRequest(
        graph_id="g", query=pattern, use_result_cache=False, **kwargs
    ))


class TestKillResume:
    def test_kill_mid_match_resumes_to_exact_count(self, small_plc, fast_config):
        baseline = match(small_plc, "P1", config=fast_config).count
        plan = WorkerFaultPlan(schedule=(
            WorkerFaultSpec(WorkerFaultKind.KILL, request_id=1, at_checkpoint=2),
        ))
        with make_supervised(fast_config, plan) as svc:
            svc.register_graph("g", small_plc)
            resp = submit_uncached(svc, "P1").result(timeout=60.0)
            assert resp.ok, resp.error
            assert resp.count == baseline
            assert resp.resumed
            assert resp.redeliveries == 1
            m = svc.metrics
            assert m.get("worker_crashes") == 1
            assert m.get("supervisor_restarts") == 1
            assert m.get("redeliveries") == 1
            assert m.get("resumed") == 1
            snap = svc.snapshot()["resilience"]
            assert snap["restarts"] == 1
            assert snap["checkpoints_taken"] >= 1

    def test_stall_mid_match_is_abandoned_and_redelivered(
        self, small_plc, fast_config
    ):
        baseline = match(small_plc, "P1", config=fast_config).count
        plan = WorkerFaultPlan(schedule=(
            WorkerFaultSpec(
                WorkerFaultKind.STALL, request_id=1, at_checkpoint=2,
                stall_s=1.2,
            ),
        ))
        with make_supervised(fast_config, plan, heartbeat_timeout_s=0.3) as svc:
            svc.register_graph("g", small_plc)
            resp = submit_uncached(svc, "P1").result(timeout=60.0)
            assert resp.ok, resp.error
            assert resp.count == baseline
            assert resp.redeliveries == 1
            assert svc.metrics.get("worker_stalls") == 1

    def test_resumed_count_equals_uninterrupted_across_patterns(
        self, small_plc, fast_config
    ):
        """Kill at a later checkpoint on a different pattern."""
        baseline = match(small_plc, "P2", config=fast_config).count
        plan = WorkerFaultPlan(schedule=(
            WorkerFaultSpec(WorkerFaultKind.KILL, request_id=1, at_checkpoint=4),
        ))
        with make_supervised(fast_config, plan) as svc:
            svc.register_graph("g", small_plc)
            resp = submit_uncached(svc, "P2").result(timeout=60.0)
            assert resp.ok, resp.error
            assert resp.count == baseline
            assert resp.resumed


class TestQuarantineE2E:
    def test_redelivery_exhaustion_poisons_and_rejects_repeats(
        self, small_plc, fast_config
    ):
        # Kill every delivery: budget of 1 redelivery is exhausted fast.
        plan = WorkerFaultPlan(schedule=(
            WorkerFaultSpec(
                WorkerFaultKind.KILL, request_id=1, at_checkpoint=1,
                delivery=None,
            ),
        ))
        with make_supervised(fast_config, plan, max_redeliveries=1) as svc:
            svc.register_graph("g", small_plc)
            resp = submit_uncached(svc, "P1").result(timeout=60.0)
            assert resp.error is not None
            assert resp.error.startswith("POISONED")
            assert "worker-crash" in resp.error
            with pytest.raises(PoisonedRequestError):
                submit_uncached(svc, "P1")
            m = svc.metrics
            assert m.get("quarantined") == 1
            assert m.get("poisoned_rejected") == 1
            assert len(svc.supervisor.quarantine) == 1
            # A different pattern is a different fingerprint: unaffected.
            ok = submit_uncached(svc, "P3").result(timeout=60.0)
            assert ok.ok, ok.error

    def test_breaker_opens_under_repeated_kills(self, small_plc, fast_config):
        plan = WorkerFaultPlan(schedule=(
            WorkerFaultSpec(
                WorkerFaultKind.KILL, request_id=1, at_checkpoint=1,
                delivery=None,
            ),
        ))
        with make_supervised(
            fast_config, plan, max_redeliveries=3,
            breaker_threshold=2, breaker_open_s=30.0,
        ) as svc:
            svc.register_graph("g", small_plc)
            resp = submit_uncached(svc, "P1").result(timeout=60.0)
            assert resp.error is not None and resp.error.startswith("POISONED")
            assert svc.metrics.get("breaker_opens") >= 1
            # Same (graph, plan) signature, different config fingerprint:
            # clears quarantine but hits the open breaker at submit.
            with pytest.raises(CircuitOpenError):
                svc.submit(MatchRequest(
                    graph_id="g", query="P1", use_result_cache=False,
                    config=fast_config.replace(num_warps=4),
                ))
            assert svc.metrics.get("breaker_rejected") == 1


class TestSeededChaos:
    def test_all_requests_settle_with_exact_counts(self, small_plc, fast_config):
        patterns = ["P1", "P2", "P3"]
        baselines = {
            p: match(small_plc, p, config=fast_config).count for p in patterns
        }
        # Random kills/stalls hit only the first delivery
        # (max_fault_deliveries=1), so every request must settle OK and
        # every count must equal the fault-free baseline bit-for-bit.
        plan = WorkerFaultPlan(
            seed=SEED, kill_rate=0.4, stall_rate=0.1, stall_s=1.0
        )
        n = 9
        with make_supervised(fast_config, plan) as svc:
            svc.register_graph("g", small_plc)
            tickets = [
                (patterns[i % len(patterns)],
                 submit_uncached(svc, patterns[i % len(patterns)]))
                for i in range(n)
            ]
            responses = [(p, t.result(timeout=120.0)) for p, t in tickets]
            m = svc.metrics
            assert m.get("submitted") == n
            assert m.get("completed") == n
            assert m.get("quarantined") == 0
            assert m.get("stranded") == 0
            crashes = m.get("worker_crashes")
            stalls = m.get("worker_stalls")
            assert m.get("supervisor_restarts") == crashes + stalls
        for p, resp in responses:
            assert resp.ok, f"{p}: {resp.error}"
            assert resp.count == baselines[p], p

    def test_chaos_metrics_render(self, small_plc, fast_config):
        plan = WorkerFaultPlan(schedule=(
            WorkerFaultSpec(WorkerFaultKind.KILL, request_id=1, at_checkpoint=1),
        ))
        with make_supervised(fast_config, plan) as svc:
            svc.register_graph("g", small_plc)
            submit_uncached(svc, "P1").result(timeout=60.0)
            text = svc.render_metrics()
        assert "supervision" in text
        assert "breakers" in text
        assert "quarantine" in text
        assert "checkpoints" in text


class TestDrain:
    def test_drain_settles_everything(self, small_plc, fast_config):
        plan = WorkerFaultPlan()  # unarmed: pure drain semantics
        with make_supervised(fast_config, plan) as svc:
            svc.register_graph("g", small_plc)
            tickets = [submit_uncached(svc, "P1") for _ in range(4)]
            stranded = svc.drain(timeout=60.0)
            assert stranded == 0
            assert all(t.done() for t in tickets)
            assert not svc.running
            with pytest.raises(ReproError):  # stopped (or sealed) service
                submit_uncached(svc, "P1")

    def test_sealed_queue_still_accepts_redelivery(self, small_plc, fast_config):
        """A drain that races a crash must not lose the in-flight entry."""
        plan = WorkerFaultPlan(schedule=(
            WorkerFaultSpec(WorkerFaultKind.KILL, request_id=1, at_checkpoint=2),
        ))
        with make_supervised(fast_config, plan) as svc:
            svc.register_graph("g", small_plc)
            ticket = submit_uncached(svc, "P1")
            stranded = svc.drain(timeout=60.0)
            assert stranded == 0
            resp = ticket.result(timeout=1.0)
            assert resp.ok, resp.error


class TestStranded:
    def test_unjoinable_worker_settles_inflight_as_stranded(
        self, small_plc, fast_config
    ):
        # Wedge the worker well past the join timeout, with a heartbeat
        # timeout too long for the watchdog to rescue it first.
        plan = WorkerFaultPlan(schedule=(
            WorkerFaultSpec(
                WorkerFaultKind.STALL, request_id=1, at_checkpoint=1,
                stall_s=2.0,
            ),
        ))
        with make_supervised(
            fast_config, plan, workers=1, heartbeat_timeout_s=30.0
        ) as svc:
            svc.register_graph("g", small_plc)
            ticket = submit_uncached(svc, "P1")
            deadline = time.monotonic() + 10.0
            while (
                svc.metrics.get("checkpoints") == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)  # wait for the worker to enter the stall
            unjoined = svc._pool.join(timeout=0.2)
            assert len(unjoined) == 1
            assert unjoined[0].abandoned
            resp = ticket.result(timeout=1.0)
            assert resp.error == "STRANDED"
            assert svc.metrics.get("stranded") == 1


class TestMidBatchIsolation:
    def test_sibling_entries_survive_a_mid_batch_crash(
        self, small_plc, fast_config, monkeypatch
    ):
        """Regression: an exception processing one batch entry must not
        strand its siblings — each settles exactly once."""
        from repro.serve.workers import Worker

        original = Worker._process_one

        def exploding(self, entry, graph, version, batch_size):
            if entry.request_id == 1:
                raise RuntimeError("boom mid-batch")
            return original(self, entry, graph, version, batch_size)

        monkeypatch.setattr(Worker, "_process_one", exploding)
        baseline = match(small_plc, "P1", config=fast_config).count
        svc = MatchService(ServeConfig(
            workers=1, max_batch=4, batch_window_ms=50.0, autostart=False,
            enable_result_cache=False, match_config=fast_config,
        ))
        svc.register_graph("g", small_plc)
        t1 = submit_uncached(svc, "P1")
        t2 = submit_uncached(svc, "P1")  # same batch key: rides along
        svc.start()
        try:
            r1 = t1.result(timeout=60.0)
            r2 = t2.result(timeout=60.0)
        finally:
            svc.stop()
        assert r1.error == "ERR (RuntimeError)"
        assert r2.ok, r2.error
        assert r2.count == baseline
        assert svc.metrics.get("completed") == 2
