"""Property-based differential harness: every engine vs the CPU oracle.

Seeded ``random_query`` patterns run against seeded generated graphs
through T-DFS, STMatch, EGSM, PBE and the hybrid scheduler, asserting all
exact engines report identical instance counts (and EGSM reports
``instances × |Aut|``, since it skips symmetry breaking).  The case seed
is threaded into :func:`repro.verify.verify_engines` so any divergence
prints the exact engine pair and the seed that reproduces it.

``REPRO_DIFF_SEED`` offsets the whole case grid — CI runs the suite twice
with two fixed offsets, so every push explores a fresh slice of the case
space while staying reproducible.
"""

from __future__ import annotations

import pytest

from repro.verify import VerificationReport, verify_engines
from tests.fuzz import (  # shared case space (see tests/fuzz.py)
    FAST,
    HALF_STEAL,
    SEED_BASE,
    STEAL,
    case_graph,
    case_query,
)


def check(graph, query, config, seed):
    report = verify_engines(graph, query, config=config, seed=seed)
    assert report.ok, report.summary()
    return report


class TestUnlabeledDifferential:
    """20 seeded unlabeled cases across both graph families."""

    @pytest.mark.parametrize("case", range(20))
    def test_engines_agree(self, case):
        seed = SEED_BASE + case
        graph = case_graph(seed)
        query = case_query(seed)
        report = check(graph, query, FAST, seed)
        # The harness actually compared several engines, not a single one.
        assert len(report.results) + len(report.skipped) >= 4


class TestLabeledDifferential:
    """10 seeded labeled cases (PBE must be skipped, not failed)."""

    @pytest.mark.parametrize("case", range(10))
    def test_engines_agree(self, case):
        seed = SEED_BASE + 500 + case
        graph = case_graph(seed)
        from repro.graph.builder import relabel_random

        labeled = relabel_random(graph, 4, seed=seed, name=f"{graph.name}-L4")
        query = case_query(seed, num_labels=4)
        report = check(labeled, query, FAST, seed)
        assert any(e == "pbe" for e, _ in report.skipped)


class TestStealConfigDifferential:
    """10 seeded cases under aggressive timeout-steal decomposition.

    The counts must be invariant to *how* the search tree is split
    across warps — the core T-DFS correctness claim.
    """

    @pytest.mark.parametrize("case", range(6))
    def test_timeout_steal_agrees(self, case):
        seed = SEED_BASE + 900 + case
        graph = case_graph(seed)
        query = case_query(seed)
        report = check(graph, query, STEAL, seed)
        assert report.results["tdfs"].count == report.reference_count

    def test_slice_actually_decomposes(self):
        """Guard against a silent no-op: within the current seed slice, at
        least one steal-config case must trigger timeout decomposition."""
        from repro.core.engine import TDFSEngine
        from repro.query.plan import compile_plan

        for case in range(6):
            seed = SEED_BASE + 900 + case
            plan = compile_plan(case_query(seed))
            result = TDFSEngine(STEAL).run(case_graph(seed), plan)
            if result.timeouts > 0:
                return
        pytest.fail("no steal-config case decomposed; τ/chunk too lax")

    @pytest.mark.parametrize("case", range(4))
    def test_half_steal_agrees(self, case):
        seed = SEED_BASE + 950 + case
        graph = case_graph(seed)
        query = case_query(seed)
        check(graph, query, HALF_STEAL, seed)


class TestDivergenceReporting:
    """Unit tests for the verify fix: reports name the pair and the seed."""

    def _report(self):
        return VerificationReport(
            graph_name="g",
            query_name="P3",
            reference_count=10,
            aut_size=2,
            results={},
            mismatches=[("stmatch", 7, 10)],
            seed=1234,
        )

    def test_divergences_pairs(self):
        report = self._report()
        assert report.divergences() == [("stmatch", "cpu", 7, 10)]
        assert not report.ok

    def test_summary_names_pair_and_seed(self):
        text = self._report().summary()
        assert "stmatch vs cpu diverged" in text
        assert "stmatch reported 7, cpu expects 10" in text
        assert "(seed 1234)" in text
        assert "MISMATCH" in text

    def test_summary_without_seed(self):
        report = self._report()
        report.seed = None
        text = report.summary()
        assert "diverged" in text and "seed" not in text

    def test_live_report_records_seed(self, small_plc):
        report = verify_engines(
            small_plc, "P1", config=FAST, engines=["tdfs"], seed=77
        )
        assert report.ok
        assert report.seed == 77
        assert "seed=77" in report.summary()
