"""Golden-count regression against the checked-in benchmark tables.

The ``results/fig-9-*.tsv`` tables were produced by the full benchmark
grid; their ``instances`` column is the ground-truth embedding count per
(dataset, pattern) cell.  Re-running a pinned subset of that matrix and
comparing counts (only counts — timings are configuration-dependent)
catches any semantic drift in the matcher, the plans, or the stand-in
dataset generators, all of which are deterministic by construction.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import run_cell

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Pinned (dataset, pattern) cells: the cheap patterns of two datasets,
#: including zero-count cells (absence is as load-bearing as presence).
GOLDEN_CELLS = [
    ("dblp", "P1"),
    ("dblp", "P2"),
    ("dblp", "P3"),
    ("dblp", "P4"),
    ("dblp", "P6"),
    ("facebook", "P1"),
    ("facebook", "P2"),
    ("facebook", "P4"),
    ("facebook", "P5"),
    ("facebook", "P7"),
]


def load_golden(dataset: str) -> dict[str, int]:
    """Parse one fig-9 table into ``{pattern: instances}``."""
    path = os.path.join(
        RESULTS_DIR, f"fig-9-unlabeled-comparison-on-{dataset}.tsv"
    )
    counts: dict[str, int] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("pattern\t"):
                continue
            fields = line.split("\t")
            counts[fields[0]] = int(fields[1].rstrip("!"))
    return counts


def test_golden_tables_parse():
    for dataset in ("dblp", "facebook"):
        golden = load_golden(dataset)
        assert set(golden) == {f"P{i}" for i in range(1, 12)}
        assert all(v >= 0 for v in golden.values())


@pytest.mark.parametrize("dataset,pattern", GOLDEN_CELLS)
def test_count_matches_golden(dataset, pattern):
    golden = load_golden(dataset)
    result = run_cell(dataset, pattern, "tdfs")
    assert not result.failed, result.error
    assert result.count == golden[pattern], (
        f"{dataset}/{pattern}: got {result.count}, "
        f"golden table says {golden[pattern]}"
    )
    # Every bench cell now also carries the obs snapshot.
    assert result.metrics is not None
    assert result.metrics["engine.matches"] == result.count
