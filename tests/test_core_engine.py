"""Unit/integration tests for the T-DFS engine itself."""

import pytest

from repro import StackMode, Strategy, TDFSConfig, match
from repro.baselines.cpu import cpu_count
from repro.core.engine import TDFSEngine
from repro.errors import ReproError, UnsupportedError
from repro.query.patterns import get_pattern
from repro.query.plan import compile_plan


class TestBasicRuns:
    def test_k4_diamonds(self, k4, fast_config):
        result = TDFSEngine(fast_config).run(k4, get_pattern("P1"))
        assert result.count == 6
        assert not result.failed

    def test_k4_clique(self, k4, fast_config):
        result = TDFSEngine(fast_config).run(k4, get_pattern("P2"))
        assert result.count == 1
        assert result.count_embeddings == 24

    def test_k6_known_counts(self, k6, fast_config):
        engine = TDFSEngine(fast_config)
        # C(6,5) five-cliques in K6.
        assert engine.run(k6, get_pattern("P7")).count == 6
        # Diamonds in K6: choose the shared edge (15) × choose apexes C(4,2).
        assert engine.run(k6, get_pattern("P1")).count == 90

    def test_no_match(self, triangle, fast_config):
        result = TDFSEngine(fast_config).run(triangle, get_pattern("P2"))
        assert result.count == 0

    def test_matches_cpu_reference(self, small_plc, fast_config):
        for name in ("P1", "P2", "P3", "P5"):
            plan = compile_plan(get_pattern(name))
            expect = cpu_count(small_plc, plan)
            got = TDFSEngine(fast_config).run(small_plc, plan)
            assert got.count == expect, name

    def test_elapsed_positive(self, small_plc, fast_config):
        result = TDFSEngine(fast_config).run(small_plc, get_pattern("P1"))
        assert result.elapsed_cycles > 0
        assert result.elapsed_ms > 0

    def test_labeled_query_needs_labeled_graph(self, small_plc, fast_config):
        with pytest.raises(UnsupportedError):
            TDFSEngine(fast_config).run(small_plc, get_pattern("P12"))

    def test_labeled_run(self, labeled_plc, fast_config):
        plan = compile_plan(get_pattern("P12"))
        expect = cpu_count(labeled_plc, plan)
        got = TDFSEngine(fast_config).run(labeled_plc, plan)
        assert got.count == expect

    def test_match_helper_accepts_pattern_name(self, k4):
        assert match(k4, "P1").count == 6

    def test_match_helper_rejects_unknown_engine(self, k4):
        with pytest.raises(UnsupportedError):
            match(k4, "P1", engine="gpuzilla")


class TestStackModes:
    @pytest.mark.parametrize(
        "mode", [StackMode.PAGED, StackMode.ARRAY_DMAX, StackMode.ARRAY_FIXED]
    )
    def test_counts_equal_across_modes(self, small_plc, mode):
        # small_plc's candidate sets stay below the fixed capacity, so all
        # three modes must agree.
        cfg = TDFSConfig(num_warps=8, stack_mode=mode)
        plan = compile_plan(get_pattern("P3"))
        expect = cpu_count(small_plc, plan)
        assert TDFSEngine(cfg).run(small_plc, plan).count == expect

    def test_fixed_truncation_detected(self, skewed_graph):
        cfg = TDFSConfig(
            num_warps=8,
            stack_mode=StackMode.ARRAY_FIXED,
            fixed_capacity=8,
            truncate_on_overflow=True,
        )
        plan = compile_plan(get_pattern("P3"))
        result = TDFSEngine(cfg).run(skewed_graph, plan)
        assert result.overflowed
        assert result.count < cpu_count(skewed_graph, plan)

    def test_fixed_raise_policy(self, skewed_graph):
        cfg = TDFSConfig(
            num_warps=8,
            stack_mode=StackMode.ARRAY_FIXED,
            fixed_capacity=8,
            truncate_on_overflow=False,
        )
        result = TDFSEngine(cfg).run(skewed_graph, get_pattern("P3"))
        assert result.error == "STACK_OVERFLOW"

    def test_paged_uses_less_stack_memory(self, skewed_graph):
        plan = compile_plan(get_pattern("P3"))
        paged = TDFSEngine(TDFSConfig(num_warps=8)).run(skewed_graph, plan)
        arr = TDFSEngine(
            TDFSConfig(num_warps=8, stack_mode=StackMode.ARRAY_DMAX)
        ).run(skewed_graph, plan)
        assert paged.count == arr.count
        assert paged.memory.stack_bytes < arr.memory.stack_bytes
        assert paged.memory.pages_allocated > 0

    def test_paged_slower_than_array(self, skewed_graph):
        # Paper Tables VI/VIII: paging costs time for the memory savings.
        plan = compile_plan(get_pattern("P3"))
        paged = TDFSEngine(TDFSConfig(num_warps=8)).run(skewed_graph, plan)
        arr = TDFSEngine(
            TDFSConfig(num_warps=8, stack_mode=StackMode.ARRAY_DMAX)
        ).run(skewed_graph, plan)
        assert paged.elapsed_cycles > arr.elapsed_cycles


class TestOptimizationToggles:
    def test_reuse_does_not_change_counts(self, small_plc):
        plan_on = compile_plan(get_pattern("P1"), enable_reuse=True)
        plan_off = compile_plan(get_pattern("P1"), enable_reuse=False)
        a = TDFSEngine(TDFSConfig(num_warps=8)).run(small_plc, plan_on)
        b = TDFSEngine(
            TDFSConfig(num_warps=8, enable_reuse=False)
        ).run(small_plc, plan_off)
        assert a.count == b.count

    def test_reuse_saves_time(self, small_plc):
        # P1 diamond is the canonical reuse case (paper Fig. 7).
        a = TDFSEngine(TDFSConfig(num_warps=8)).run(small_plc, get_pattern("P1"))
        b = TDFSEngine(
            TDFSConfig(num_warps=8, enable_reuse=False)
        ).run(small_plc, get_pattern("P1"))
        assert a.elapsed_cycles <= b.elapsed_cycles

    def test_edge_filter_does_not_change_counts(self, small_plc):
        a = TDFSEngine(TDFSConfig(num_warps=8)).run(small_plc, get_pattern("P2"))
        b = TDFSEngine(
            TDFSConfig(num_warps=8, enable_edge_filter=False)
        ).run(small_plc, get_pattern("P2"))
        assert a.count == b.count

    def test_symmetry_invariant(self, small_plc):
        # embeddings == instances × |Aut| (the key correctness invariant).
        for name in ("P1", "P2", "P3"):
            plan_on = compile_plan(get_pattern(name), enable_symmetry=True)
            plan_off = compile_plan(get_pattern(name), enable_symmetry=False)
            inst = TDFSEngine(TDFSConfig(num_warps=8)).run(small_plc, plan_on)
            emb = TDFSEngine(
                TDFSConfig(num_warps=8, enable_symmetry=False)
            ).run(small_plc, plan_off)
            assert emb.count == inst.count * plan_on.aut_size, name


class TestConfigValidation:
    def test_rejects_zero_warps(self):
        with pytest.raises(ReproError):
            TDFSConfig(num_warps=0)

    def test_rejects_zero_chunk(self):
        with pytest.raises(ReproError):
            TDFSConfig(chunk_size=0)

    def test_tau_ms_roundtrip(self):
        cfg = TDFSConfig().with_tau_ms(0.5)
        assert cfg.tau_ms == pytest.approx(0.5)

    def test_tau_infinity_disables(self):
        cfg = TDFSConfig().with_tau_ms(float("inf"))
        assert cfg.strategy is Strategy.NONE

    def test_stats_populated(self, small_plc, fast_config):
        result = TDFSEngine(fast_config).run(small_plc, get_pattern("P3"))
        assert result.chunks_fetched > 0
        assert result.busy_cycles > 0
        assert result.memory.graph_bytes == small_plc.memory_bytes()
        assert result.memory.device_peak_bytes > 0
