"""Tests for the four load-balancing strategies (paper Fig. 11).

Every strategy must produce identical counts; they differ only in virtual
time and in the side-channel statistics (timeouts, steals, kernel
launches).
"""

import pytest

from repro import Strategy, TDFSConfig
from repro.baselines.cpu import cpu_count
from repro.core.engine import TDFSEngine
from repro.query.patterns import get_pattern
from repro.query.plan import compile_plan

ALL = [Strategy.TIMEOUT, Strategy.HALF_STEAL, Strategy.NEW_KERNEL, Strategy.NONE]


def run(graph, pattern_name, strategy, **over):
    cfg = TDFSConfig(num_warps=8, strategy=strategy, **over)
    return TDFSEngine(cfg).run(graph, get_pattern(pattern_name))


class TestCountsAgree:
    @pytest.mark.parametrize("strategy", ALL)
    def test_small_plc(self, small_plc, strategy):
        plan = compile_plan(get_pattern("P3"))
        expect = cpu_count(small_plc, plan)
        assert run(small_plc, "P3", strategy).count == expect

    @pytest.mark.parametrize("strategy", ALL)
    def test_skewed_graph(self, skewed_graph, strategy):
        plan = compile_plan(get_pattern("P1"))
        expect = cpu_count(skewed_graph, plan)
        assert run(skewed_graph, "P1", strategy).count == expect

    @pytest.mark.parametrize("strategy", ALL)
    def test_labeled(self, labeled_plc, strategy):
        plan = compile_plan(get_pattern("P14"))
        expect = cpu_count(labeled_plc, plan)
        assert run(labeled_plc, "P14", strategy).count == expect


class TestTimeoutStrategy:
    def test_aggressive_tau_decomposes(self, skewed_graph):
        result = run(skewed_graph, "P3", Strategy.TIMEOUT, tau_cycles=200)
        assert result.timeouts > 0
        assert result.queue.enqueued > 0
        assert result.queue.enqueued == result.queue.dequeued

    def test_huge_tau_never_fires(self, small_plc):
        result = run(small_plc, "P3", Strategy.TIMEOUT, tau_cycles=10**12)
        assert result.timeouts == 0
        assert result.queue.enqueued == 0

    def test_tiny_queue_survives_overflow(self, skewed_graph):
        # A full queue must fall back to in-place execution (Alg. 4 l.18-20),
        # never lose work.
        plan = compile_plan(get_pattern("P3"))
        expect = cpu_count(skewed_graph, plan)
        result = run(
            skewed_graph,
            "P3",
            Strategy.TIMEOUT,
            tau_cycles=200,
            queue_capacity_tasks=2,
        )
        assert result.count == expect

    def test_timeout_improves_makespan_on_stragglers(self, straggler_graph):
        # The headline claim: timeout stealing beats no stealing when the
        # workload has straggler subtrees.
        with_steal = run(straggler_graph, "P3", Strategy.TIMEOUT)
        without = run(straggler_graph, "P3", Strategy.NONE)
        assert with_steal.count == without.count
        assert with_steal.elapsed_cycles < without.elapsed_cycles

    def test_balance_improves(self, straggler_graph):
        with_steal = run(straggler_graph, "P3", Strategy.TIMEOUT)
        without = run(straggler_graph, "P3", Strategy.NONE)
        assert with_steal.load_imbalance < without.load_imbalance


class TestHalfSteal:
    def test_steals_happen(self, skewed_graph):
        result = run(skewed_graph, "P3", Strategy.HALF_STEAL)
        assert result.steals > 0

    def test_no_queue_involved(self, skewed_graph):
        result = run(skewed_graph, "P3", Strategy.HALF_STEAL)
        assert result.queue.enqueued == 0


class TestNewKernel:
    def test_kernels_launched_on_fanout(self, skewed_graph):
        result = run(
            skewed_graph, "P3", Strategy.NEW_KERNEL, new_kernel_fanout=16
        )
        assert result.kernel_launches > 0

    def test_no_kernel_below_threshold(self, small_plc):
        result = run(
            small_plc, "P2", Strategy.NEW_KERNEL, new_kernel_fanout=10_000
        )
        assert result.kernel_launches == 0

    def test_launch_cost_charged(self, skewed_graph):
        fast = run(skewed_graph, "P3", Strategy.NONE)
        kern = run(
            skewed_graph, "P3", Strategy.NEW_KERNEL, new_kernel_fanout=16
        )
        assert kern.count == fast.count


class TestNoSteal:
    def test_no_side_channels(self, small_plc):
        result = run(small_plc, "P3", Strategy.NONE)
        assert result.timeouts == 0
        assert result.steals == 0
        assert result.kernel_launches == 0
